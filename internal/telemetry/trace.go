package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names one stage of evaluating a selection query. A trace
// accumulates duration per phase across however many times the phase is
// entered (a query fetches many bitmaps; they all land in PhaseFetch).
//
// Phases are not all disjoint: PhaseFetch is wall-clock inclusive of the
// storage sub-phases PhaseDecompress and PhaseExtract, which break out
// where fetch time went. All other phases are disjoint.
type Phase string

const (
	// PhasePlan is optimizer time: estimating plan costs and choosing one.
	PhasePlan Phase = "plan"
	// PhaseFetch is obtaining stored bitmaps (map access, file read, or
	// pool lookup; includes decompress/extract when reading from disk).
	PhaseFetch Phase = "fetch"
	// PhaseDecompress is zlib inflate time inside fetch.
	PhaseDecompress Phase = "decompress"
	// PhaseExtract is row-major column extraction time inside fetch.
	PhaseExtract Phase = "extract"
	// PhaseBoolOps is bitmap AND/OR/XOR/NOT execution.
	PhaseBoolOps Phase = "bool_ops"
	// PhaseFilter is per-row predicate testing in the engine's P1/P2 plans
	// and RID-list merging in P3.
	PhaseFilter Phase = "filter"
	// PhasePopcount is counting (or enumerating) result bits.
	PhasePopcount Phase = "popcount"
	// PhaseSegments is per-segment bitmap combination inside the segmented
	// evaluator; one call is recorded per segment processed, so Calls
	// doubles as the segment count. Worker time overlaps wall-clock.
	PhaseSegments Phase = "segments"
)

// MaxPhases bounds how many distinct phases one trace can hold. The
// built-in Phase constants are exactly this many; a trace stores its
// aggregates in a fixed array of this size so the record path (Span.End →
// add, on every bitmap fetch and boolean op) allocates nothing. A custom
// phase arriving after the array is full is silently dropped — losing an
// exotic phase beats allocating per query on the hot path.
const MaxPhases = 8

type phaseAgg struct {
	calls     int
	dur       time.Duration
	min, max  time.Duration // per-call extremes (min is meaningful once calls > 0)
	allocB    int64         // heap bytes allocated inside profiled spans
	allocObjs int64         // heap objects allocated inside profiled spans
}

// phaseEntry is one occupied slot of a trace's fixed phase table.
type phaseEntry struct {
	phase Phase
	agg   phaseAgg
}

// PhaseRecord is one phase's aggregate within a finished or running trace.
// Duration is the sum over calls; Min/Max are per-call extremes, so skew
// across many calls of the same phase (e.g. the per-segment `segments`
// records of the parallel evaluator) is visible without keeping every
// sample. AllocBytes/AllocObjects are filled only for profiled traces
// (see Profile) and attribute process-global allocation deltas to the
// phase — exact under serial evaluation, approximate under concurrency.
type PhaseRecord struct {
	Phase        Phase         `json:"phase"`
	Calls        int           `json:"calls"`
	Duration     time.Duration `json:"ns"`
	Min          time.Duration `json:"min_ns"`
	Max          time.Duration `json:"max_ns"`
	AllocBytes   int64         `json:"alloc_bytes,omitempty"`
	AllocObjects int64         `json:"alloc_objects,omitempty"`
}

// Trace records the phases of one query evaluation. The zero value is not
// usable; create with NewTrace. All methods are safe on a nil receiver
// (no-ops returning zero values), so instrumented code never needs a nil
// check. A Trace may be shared by concurrent phases.
type Trace struct {
	name     string
	id       string
	start    time.Time
	profiled bool // set once before use by Profile; spans capture alloc deltas

	mu      sync.Mutex
	entries [MaxPhases]phaseEntry // guarded by mu; entries[:nphases] are live, in first-entered order
	nphases int                   // guarded by mu
	total   time.Duration         // guarded by mu; set by Finish
	done    bool                  // guarded by mu
}

// traceSeq numbers traces process-wide so exemplars and pprof labels can
// name one specific evaluation even when many share a query string.
var traceSeq atomic.Int64

// NewTrace starts a trace for the named query. Each trace gets a unique
// ID derived from the name and a process-wide sequence number.
func NewTrace(name string) *Trace {
	return &Trace{
		name:  name,
		id:    fmt.Sprintf("%s#%d", name, traceSeq.Add(1)),
		start: time.Now(),
	}
}

// Name returns the query name given to NewTrace.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// ID returns the trace's unique identifier ("name#seq"). Exemplars in the
// registry's JSON export and the pprof label bix_query_id carry this ID,
// linking latency buckets and CPU samples back to one evaluation.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Profile enables per-phase allocation tracking: every subsequent span
// additionally records the heap bytes/objects allocated between Start and
// End (process-global counters, so attribution is exact only for serial
// evaluation). Returns t for chaining. Call before handing the trace to
// an evaluator; not safe to toggle while spans are open.
func (t *Trace) Profile() *Trace {
	if t != nil {
		t.profiled = true
	}
	return t
}

// Profiled reports whether Profile was called.
func (t *Trace) Profiled() bool { return t != nil && t.profiled }

// Add accumulates d into phase p.
func (t *Trace) Add(p Phase, d time.Duration) { t.add(p, d, 0, 0) }

func (t *Trace) add(p Phase, d time.Duration, allocB, allocObjs int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	var a *phaseAgg
	for i := 0; i < t.nphases; i++ {
		if t.entries[i].phase == p {
			a = &t.entries[i].agg
			break
		}
	}
	if a == nil {
		if t.nphases == MaxPhases {
			t.mu.Unlock()
			return // table full: see MaxPhases
		}
		t.entries[t.nphases] = phaseEntry{phase: p, agg: phaseAgg{min: d, max: d}}
		a = &t.entries[t.nphases].agg
		t.nphases++
	}
	a.calls++
	a.dur += d
	if d < a.min {
		a.min = d
	}
	if d > a.max {
		a.max = d
	}
	a.allocB += allocB
	a.allocObjs += allocObjs
	t.mu.Unlock()
}

// Span is an open phase interval; End closes it and accumulates the
// elapsed time (and, for profiled traces, the allocation delta) into the
// trace.
type Span struct {
	t      *Trace
	p      Phase
	t0     time.Time
	aB, aO int64 // alloc counters at Start, profiled traces only
}

// Start opens a span for phase p. On a nil trace the returned span is a
// no-op.
func (t *Trace) Start(p Phase) Span {
	if t == nil {
		return Span{}
	}
	s := Span{t: t, p: p, t0: time.Now()}
	if t.profiled {
		s.aB, s.aO = ReadAllocs()
	}
	return s
}

// End closes the span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.t0)
	if !s.t.profiled {
		s.t.Add(s.p, d)
		return
	}
	b, o := ReadAllocs()
	s.t.add(s.p, d, b-s.aB, o-s.aO)
}

// Finish freezes the trace total at the elapsed wall-clock time and
// returns it. Further Finish calls return the frozen total.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.total = time.Since(t.start)
		t.done = true
	}
	return t.total
}

// Elapsed returns the frozen total after Finish, or the running elapsed
// time before it.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.total
	}
	return time.Since(t.start)
}

// Phases returns the phase aggregates in first-entered order.
func (t *Trace) Phases() []PhaseRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseRecord, 0, t.nphases)
	for i := 0; i < t.nphases; i++ {
		e := &t.entries[i]
		out = append(out, PhaseRecord{
			Phase: e.phase, Calls: e.agg.calls, Duration: e.agg.dur,
			Min: e.agg.min, Max: e.agg.max,
			AllocBytes: e.agg.allocB, AllocObjects: e.agg.allocObjs,
		})
	}
	return out
}

// CopyPhases copies up to len(dst) phase aggregates into dst in
// first-entered order and returns the number copied. Unlike Phases it
// allocates nothing, so record-path consumers (the flight recorder) can
// snapshot a trace into a pre-allocated buffer. A nil trace copies zero
// records.
func (t *Trace) CopyPhases(dst []PhaseRecord) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := 0; i < t.nphases; i++ {
		if n == len(dst) {
			break
		}
		e := &t.entries[i]
		dst[n] = PhaseRecord{
			Phase: e.phase, Calls: e.agg.calls, Duration: e.agg.dur,
			Min: e.agg.min, Max: e.agg.max,
			AllocBytes: e.agg.allocB, AllocObjects: e.agg.allocObjs,
		}
		n++
	}
	return n
}

// String renders the trace as an indented phase table.
func (t *Trace) String() string {
	if t == nil {
		return "trace <nil>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s: total %v\n", t.Name(), t.Elapsed())
	for _, r := range t.Phases() {
		fmt.Fprintf(&sb, "  %-12s %5d calls  %v\n", r.Phase, r.Calls, r.Duration)
	}
	return sb.String()
}
