package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): grouped # HELP / # TYPE headers, one
// sample line per series, histograms as cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	prevName := ""
	for _, m := range r.snapshotMetrics() {
		if m.name != prevName {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
			prevName = m.name
		}
		switch m.kind {
		case counterKind:
			fmt.Fprintf(bw, "%s %d\n", m.id, m.c.Value())
		case gaugeKind:
			fmt.Fprintf(bw, "%s %d\n", m.id, m.g.Value())
		case histogramKind:
			writePromHistogram(bw, m)
		}
	}
	return bw.Flush()
}

func writePromHistogram(w io.Writer, m *metric) {
	cum := m.h.Cumulative()
	for i, bound := range m.h.bounds {
		fmt.Fprintf(w, "%s %d\n",
			histSeries(m.name+"_bucket", m.labels, formatFloat(bound)), cum[i])
	}
	fmt.Fprintf(w, "%s %d\n", histSeries(m.name+"_bucket", m.labels, "+Inf"), cum[len(cum)-1])
	fmt.Fprintf(w, "%s %s\n", metricID(m.name+"_sum", m.labels), formatFloat(m.h.Sum()))
	fmt.Fprintf(w, "%s %d\n", metricID(m.name+"_count", m.labels), m.h.Count())
}

// histSeries renders a _bucket series id with the le label appended.
func histSeries(name string, labels []Label, le string) string {
	return metricID(name, append(append([]Label(nil), labels...), Label{"le", le}))
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteOpenMetrics renders every registered metric in the OpenMetrics 1.0
// text format. It differs from WritePrometheus in three ways mandated by
// the spec: counter families are announced without their _total suffix,
// histogram _bucket lines carry the bucket's exemplar (`# {trace_id="..."}
// value timestamp`) when one was recorded via ObserveExemplar, and the
// exposition ends with `# EOF`. Prometheus scrapes that do not negotiate
// OpenMetrics keep the plain 0.0.4 output and never see exemplars.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	prevName := ""
	for _, m := range r.snapshotMetrics() {
		if m.name != prevName {
			family := m.name
			if m.kind == counterKind {
				family = strings.TrimSuffix(family, "_total")
			}
			fmt.Fprintf(bw, "# HELP %s %s\n", family, m.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", family, m.kind)
			prevName = m.name
		}
		switch m.kind {
		case counterKind:
			fmt.Fprintf(bw, "%s %d\n", m.id, m.c.Value())
		case gaugeKind:
			fmt.Fprintf(bw, "%s %d\n", m.id, m.g.Value())
		case histogramKind:
			writeOpenMetricsHistogram(bw, m)
		}
	}
	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

func writeOpenMetricsHistogram(w io.Writer, m *metric) {
	cum := m.h.Cumulative()
	writeBucket := func(i int, le string) {
		fmt.Fprintf(w, "%s %d", histSeries(m.name+"_bucket", m.labels, le), cum[i])
		if ex := m.h.BucketExemplar(i); ex != nil {
			fmt.Fprintf(w, " # {trace_id=%q} %s %s",
				ex.TraceID, formatFloat(ex.Value), formatOMTime(ex.Time))
		}
		fmt.Fprintf(w, "\n")
	}
	for i, bound := range m.h.bounds {
		writeBucket(i, formatFloat(bound))
	}
	writeBucket(len(cum)-1, "+Inf")
	fmt.Fprintf(w, "%s %s\n", metricID(m.name+"_sum", m.labels), formatFloat(m.h.Sum()))
	fmt.Fprintf(w, "%s %d\n", metricID(m.name+"_count", m.labels), m.h.Count())
}

// formatOMTime renders an OpenMetrics timestamp: Unix seconds with
// millisecond precision.
func formatOMTime(t time.Time) string {
	return strconv.FormatFloat(float64(t.UnixMilli())/1e3, 'f', 3, 64)
}

// wantsOpenMetrics reports whether the scrape negotiated the OpenMetrics
// exposition, either by Accept header (how Prometheus asks since 2.5 when
// exemplar scraping is on) or by an explicit format=openmetrics override.
func wantsOpenMetrics(req *http.Request) bool {
	if req.URL.Query().Get("format") == "openmetrics" {
		return true
	}
	for _, accept := range req.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mediaType, _, _ := strings.Cut(strings.TrimSpace(part), ";")
			if strings.TrimSpace(mediaType) == "application/openmetrics-text" {
				return true
			}
		}
	}
	return false
}

// HistogramSnapshot is the JSON form of one histogram: cumulative bucket
// counts plus count, sum and interpolated quantiles.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
	P50     float64          `json:"p50"`
	P90     float64          `json:"p90"`
	P99     float64          `json:"p99"`
}

// BucketSnapshot is one cumulative histogram bucket. Exemplar, when
// present, is the most recent observation recorded into this bucket with a
// trace ID (ObserveExemplar), linking the bucket to one concrete query.
type BucketSnapshot struct {
	LE         float64   `json:"le"`
	Cumulative int64     `json:"cumulative"`
	Exemplar   *Exemplar `json:"exemplar,omitempty"`
}

// Snapshot is a point-in-time JSON-serializable view of a registry, keyed
// by metric id (name plus rendered labels). Values read concurrently with
// updates may be mutually skewed by in-flight increments.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case counterKind:
			s.Counters[m.id] = m.c.Value()
		case gaugeKind:
			s.Gauges[m.id] = m.g.Value()
		case histogramKind:
			h := HistogramSnapshot{
				Count: m.h.Count(),
				Sum:   m.h.Sum(),
				P50:   m.h.Quantile(0.50),
				P90:   m.h.Quantile(0.90),
				P99:   m.h.Quantile(0.99),
			}
			cum := m.h.Cumulative()
			for i, b := range m.h.bounds {
				h.Buckets = append(h.Buckets,
					BucketSnapshot{LE: b, Cumulative: cum[i], Exemplar: m.h.BucketExemplar(i)})
			}
			s.Histograms[m.id] = h
		}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry over HTTP: Prometheus text by default, the
// JSON snapshot with ?format=json, and OpenMetrics (with exemplars) when
// the scrape negotiates it via the Accept header or ?format=openmetrics.
// Mount it wherever the host command likes, conventionally at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := r.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		if wantsOpenMetrics(req) {
			w.Header().Set("Content-Type",
				"application/openmetrics-text; version=1.0.0; charset=utf-8")
			if err := r.WriteOpenMetrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
