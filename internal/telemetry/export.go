package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): grouped # HELP / # TYPE headers, one
// sample line per series, histograms as cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	prevName := ""
	for _, m := range r.snapshotMetrics() {
		if m.name != prevName {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
			prevName = m.name
		}
		switch m.kind {
		case counterKind:
			fmt.Fprintf(bw, "%s %d\n", m.id, m.c.Value())
		case gaugeKind:
			fmt.Fprintf(bw, "%s %d\n", m.id, m.g.Value())
		case histogramKind:
			writePromHistogram(bw, m)
		}
	}
	return bw.Flush()
}

func writePromHistogram(w io.Writer, m *metric) {
	cum := m.h.Cumulative()
	for i, bound := range m.h.bounds {
		fmt.Fprintf(w, "%s %d\n",
			histSeries(m.name+"_bucket", m.labels, formatFloat(bound)), cum[i])
	}
	fmt.Fprintf(w, "%s %d\n", histSeries(m.name+"_bucket", m.labels, "+Inf"), cum[len(cum)-1])
	fmt.Fprintf(w, "%s %s\n", metricID(m.name+"_sum", m.labels), formatFloat(m.h.Sum()))
	fmt.Fprintf(w, "%s %d\n", metricID(m.name+"_count", m.labels), m.h.Count())
}

// histSeries renders a _bucket series id with the le label appended.
func histSeries(name string, labels []Label, le string) string {
	return metricID(name, append(append([]Label(nil), labels...), Label{"le", le}))
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// HistogramSnapshot is the JSON form of one histogram: cumulative bucket
// counts plus count, sum and interpolated quantiles.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
	P50     float64          `json:"p50"`
	P90     float64          `json:"p90"`
	P99     float64          `json:"p99"`
}

// BucketSnapshot is one cumulative histogram bucket. Exemplar, when
// present, is the most recent observation recorded into this bucket with a
// trace ID (ObserveExemplar), linking the bucket to one concrete query.
type BucketSnapshot struct {
	LE         float64   `json:"le"`
	Cumulative int64     `json:"cumulative"`
	Exemplar   *Exemplar `json:"exemplar,omitempty"`
}

// Snapshot is a point-in-time JSON-serializable view of a registry, keyed
// by metric id (name plus rendered labels). Values read concurrently with
// updates may be mutually skewed by in-flight increments.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case counterKind:
			s.Counters[m.id] = m.c.Value()
		case gaugeKind:
			s.Gauges[m.id] = m.g.Value()
		case histogramKind:
			h := HistogramSnapshot{
				Count: m.h.Count(),
				Sum:   m.h.Sum(),
				P50:   m.h.Quantile(0.50),
				P90:   m.h.Quantile(0.90),
				P99:   m.h.Quantile(0.99),
			}
			cum := m.h.Cumulative()
			for i, b := range m.h.bounds {
				h.Buckets = append(h.Buckets,
					BucketSnapshot{LE: b, Cumulative: cum[i], Exemplar: m.h.BucketExemplar(i)})
			}
			s.Histograms[m.id] = h
		}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry over HTTP: Prometheus text by default, the
// JSON snapshot with ?format=json. Mount it wherever the host command
// likes, conventionally at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := r.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
