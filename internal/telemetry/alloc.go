package telemetry

import (
	"runtime/metrics"
	"sync"
)

// Allocation accounting for per-phase resource attribution. The counters
// come from runtime/metrics' cumulative heap allocation totals, which —
// unlike runtime.ReadMemStats — are cheap to read (no stop-the-world) and
// monotonic (a GC never decreases them), so deltas between two reads are
// always non-negative and mean "bytes/objects allocated in between".
//
// The totals are process-global: concurrent work allocates into the same
// counters, so per-phase deltas attribute exactly under serial evaluation
// and approximately under concurrency. That is the best a pure-stdlib
// runtime offers, and it is documented at every consumer.

const (
	allocBytesMetric   = "/gc/heap/allocs:bytes"
	allocObjectsMetric = "/gc/heap/allocs:objects"
)

// allocSamplePool recycles the two-sample slice so reading the counters
// does not itself allocate on the steady state (the measurement would
// otherwise pollute the very deltas it captures).
var allocSamplePool = sync.Pool{New: func() any {
	s := make([]metrics.Sample, 2)
	s[0].Name = allocBytesMetric
	s[1].Name = allocObjectsMetric
	return &s
}}

// ReadAllocs returns the process-wide cumulative heap allocation counters:
// total bytes and total objects allocated since process start. Subtract
// two readings to get the allocation cost of the code in between.
func ReadAllocs() (bytes, objects int64) {
	sp := allocSamplePool.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	if v := (*sp)[0].Value; v.Kind() == metrics.KindUint64 {
		bytes = int64(v.Uint64())
	}
	if v := (*sp)[1].Value; v.Kind() == metrics.KindUint64 {
		objects = int64(v.Uint64())
	}
	allocSamplePool.Put(sp)
	return bytes, objects
}
