package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func exportFixture() *Registry {
	r := New()
	r.Counter("scans_total", "Bitmaps read.").Add(7)
	r.Counter("ops_total", "Ops by kind.", Label{"kind", "and"}).Add(3)
	r.Counter("ops_total", "Ops by kind.", Label{"kind", "or"}).Add(2)
	r.Gauge("resident", "Pool residents.").Set(4)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := exportFixture().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP scans_total Bitmaps read.",
		"# TYPE scans_total counter",
		"scans_total 7",
		`ops_total{kind="and"} 3`,
		`ops_total{kind="or"} 2`,
		"# TYPE resident gauge",
		"resident 4",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.055",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Grouped headers: one # TYPE per metric name, not per series.
	if strings.Count(out, "# TYPE ops_total") != 1 {
		t.Errorf("ops_total must have exactly one TYPE header:\n%s", out)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := exportFixture().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Counters["scans_total"] != 7 {
		t.Fatalf("scans_total = %d, want 7", s.Counters["scans_total"])
	}
	if s.Counters[`ops_total{kind="and"}`] != 3 {
		t.Fatalf("labeled counter missing: %v", s.Counters)
	}
	h := s.Histograms["lat_seconds"]
	if h.Count != 3 || len(h.Buckets) != 2 || h.Buckets[1].Cumulative != 2 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
	if h.P99 != 0.1 {
		t.Fatalf("p99 = %v, want clamp to 0.1", h.P99)
	}
}

// TestWriteOpenMetrics checks the OpenMetrics exposition: counter families
// drop the _total suffix in their headers, histogram buckets carry
// exemplars when one was recorded, and the output ends with # EOF.
func TestWriteOpenMetrics(t *testing.T) {
	r := exportFixture()
	r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1}).
		ObserveExemplar(0.05, "q#42")

	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP scans Bitmaps read.",
		"# TYPE scans counter",
		"scans_total 7", // sample keeps the suffix
		"# TYPE ops counter",
		`ops_total{kind="and"} 3`,
		"# TYPE resident gauge",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1` + "\n", // no exemplar recorded here
		`lat_seconds_bucket{le="+Inf"} 4` + "\n",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("openmetrics output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("output does not end with # EOF:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{le="0.1"} 3 # {trace_id="q#42"} 0.05 `) {
		t.Errorf("bucket exemplar missing or malformed:\n%s", out)
	}
	if strings.Count(out, "# {") != 1 {
		t.Errorf("expected exactly one exemplar:\n%s", out)
	}
}

// TestHandlerOpenMetricsNegotiation checks the gate: plain scrapes keep the
// 0.0.4 text format (no exemplars, no EOF trailer), while an OpenMetrics
// Accept header or an explicit format=openmetrics switches expositions.
func TestHandlerOpenMetricsNegotiation(t *testing.T) {
	r := exportFixture()
	r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1}).
		ObserveExemplar(0.05, "q#42")
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if body := rec.Body.String(); strings.Contains(body, "# {") || strings.Contains(body, "# EOF") {
		t.Fatalf("plain scrape leaked OpenMetrics syntax:\n%s", body)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept",
		"application/openmetrics-text; version=1.0.0; charset=utf-8,text/plain;q=0.5")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("content type %q", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, `trace_id="q#42"`) ||
		!strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("negotiated scrape missing exemplar or EOF:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=openmetrics", nil))
	if !strings.HasSuffix(rec.Body.String(), "# EOF\n") {
		t.Fatalf("format=openmetrics override ignored:\n%s", rec.Body.String())
	}
}

func TestHTTPHandler(t *testing.T) {
	h := Handler(exportFixture())

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "scans_total 7") {
		t.Fatalf("text endpoint: code %d body %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("json endpoint: %v", err)
	}
	if s.Gauges["resident"] != 4 {
		t.Fatalf("json endpoint gauges = %v", s.Gauges)
	}
}
