package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func exportFixture() *Registry {
	r := New()
	r.Counter("scans_total", "Bitmaps read.").Add(7)
	r.Counter("ops_total", "Ops by kind.", Label{"kind", "and"}).Add(3)
	r.Counter("ops_total", "Ops by kind.", Label{"kind", "or"}).Add(2)
	r.Gauge("resident", "Pool residents.").Set(4)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := exportFixture().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP scans_total Bitmaps read.",
		"# TYPE scans_total counter",
		"scans_total 7",
		`ops_total{kind="and"} 3`,
		`ops_total{kind="or"} 2`,
		"# TYPE resident gauge",
		"resident 4",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.055",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Grouped headers: one # TYPE per metric name, not per series.
	if strings.Count(out, "# TYPE ops_total") != 1 {
		t.Errorf("ops_total must have exactly one TYPE header:\n%s", out)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := exportFixture().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Counters["scans_total"] != 7 {
		t.Fatalf("scans_total = %d, want 7", s.Counters["scans_total"])
	}
	if s.Counters[`ops_total{kind="and"}`] != 3 {
		t.Fatalf("labeled counter missing: %v", s.Counters)
	}
	h := s.Histograms["lat_seconds"]
	if h.Count != 3 || len(h.Buckets) != 2 || h.Buckets[1].Cumulative != 2 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
	if h.P99 != 0.1 {
		t.Fatalf("p99 = %v, want clamp to 0.1", h.P99)
	}
}

func TestHTTPHandler(t *testing.T) {
	h := Handler(exportFixture())

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "scans_total 7") {
		t.Fatalf("text endpoint: code %d body %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("json endpoint: %v", err)
	}
	if s.Gauges["resident"] != 4 {
		t.Fatalf("json endpoint gauges = %v", s.Gauges)
	}
}
