package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracePhasesAccumulate(t *testing.T) {
	tr := NewTrace("q1")
	tr.Add(PhaseFetch, 10*time.Millisecond)
	tr.Add(PhaseBoolOps, time.Millisecond)
	tr.Add(PhaseFetch, 5*time.Millisecond)
	ph := tr.Phases()
	if len(ph) != 2 {
		t.Fatalf("phases = %v, want 2 entries", ph)
	}
	if ph[0].Phase != PhaseFetch || ph[0].Calls != 2 || ph[0].Duration != 15*time.Millisecond {
		t.Fatalf("fetch aggregate = %+v", ph[0])
	}
	if ph[1].Phase != PhaseBoolOps || ph[1].Calls != 1 {
		t.Fatalf("bool_ops aggregate = %+v", ph[1])
	}
	if tr.Name() != "q1" {
		t.Fatalf("name = %q", tr.Name())
	}
	s := tr.String()
	if !strings.Contains(s, "fetch") || !strings.Contains(s, "bool_ops") {
		t.Fatalf("render missing phases:\n%s", s)
	}
}

func TestSpanAndFinish(t *testing.T) {
	tr := NewTrace("q2")
	sp := tr.Start(PhasePopcount)
	time.Sleep(time.Millisecond)
	sp.End()
	ph := tr.Phases()
	if len(ph) != 1 || ph[0].Duration <= 0 {
		t.Fatalf("span did not record: %+v", ph)
	}
	total := tr.Finish()
	if total < ph[0].Duration {
		t.Fatalf("total %v < phase %v", total, ph[0].Duration)
	}
	if tr.Finish() != total || tr.Elapsed() != total {
		t.Fatal("Finish must freeze the total")
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Add(PhaseFetch, time.Second)
	tr.Start(PhaseBoolOps).End()
	if tr.Finish() != 0 || tr.Elapsed() != 0 || tr.Phases() != nil || tr.Name() != "" {
		t.Fatal("nil trace must be inert")
	}
	_ = tr.String()
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace("concurrent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Add(PhaseBoolOps, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	ph := tr.Phases()
	if len(ph) != 1 || ph[0].Calls != 4000 {
		t.Fatalf("concurrent adds lost: %+v", ph)
	}
}

func TestSlowLog(t *testing.T) {
	var out strings.Builder
	l := NewSlowLog(2*time.Millisecond, &out, 2)
	fast := NewTrace("fast")
	if l.Observe("fast", fast) {
		t.Fatal("fast query must not be logged")
	}

	slowTrace := func(name string) *Trace {
		tr := NewTrace(name)
		tr.Add(PhaseFetch, time.Millisecond)
		time.Sleep(3 * time.Millisecond)
		return tr
	}
	for _, name := range []string{"s1", "s2", "s3"} {
		if !l.Observe(name, slowTrace(name)) {
			t.Fatalf("%s must be logged", name)
		}
	}
	entries := l.Entries()
	if len(entries) != 2 || entries[0].Query != "s2" || entries[1].Query != "s3" {
		t.Fatalf("ring = %+v, want last two oldest-first", entries)
	}
	if entries[1].Total < 2*time.Millisecond || len(entries[1].Phases) == 0 {
		t.Fatalf("entry = %+v", entries[1])
	}
	if !strings.Contains(out.String(), "slow query") || !strings.Contains(out.String(), "s3") {
		t.Fatalf("log output = %q", out.String())
	}
	if l.Threshold() != 2*time.Millisecond {
		t.Fatal("threshold accessor")
	}
	if l.Observe("nil", nil) {
		t.Fatal("nil trace must not be logged")
	}
}

// TestTraceAddAllocationFree pins the hot-path contract bixlint's
// transitive hotalloc rule enforces statically: once every phase slot is
// warm, recording into a trace allocates nothing. (The first Add of a
// phase only writes into the fixed entries array, but the warm-up keeps
// the assertion independent of timer granularity.)
func TestTraceAddAllocationFree(t *testing.T) {
	phases := []Phase{
		PhasePlan, PhaseFetch, PhaseDecompress, PhaseExtract,
		PhaseBoolOps, PhaseFilter, PhasePopcount, PhaseSegments,
	}
	tr := NewTrace("alloc-free")
	for _, p := range phases {
		tr.Add(p, time.Microsecond) // warm every slot
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, p := range phases {
			tr.Add(p, time.Microsecond)
		}
	})
	if allocs != 0 {
		t.Fatalf("Trace.Add allocates %.1f objects per run; the record path must be allocation-free", allocs)
	}
}

// TestTracePhaseOverflow: a ninth distinct phase is dropped, not grown
// into — the fixed table trades exotic phases for an allocation-free
// record path.
func TestTracePhaseOverflow(t *testing.T) {
	tr := NewTrace("overflow")
	for i := 0; i < MaxPhases; i++ {
		tr.Add(Phase(string(rune('a'+i))), time.Millisecond)
	}
	tr.Add(Phase("ninth"), time.Millisecond) // silently dropped
	ph := tr.Phases()
	if len(ph) != MaxPhases {
		t.Fatalf("got %d phases, want %d (overflow must drop, not grow)", len(ph), MaxPhases)
	}
	for _, r := range ph {
		if r.Phase == "ninth" {
			t.Fatalf("overflow phase was recorded: %+v", ph)
		}
	}
	// Existing slots still accumulate after the table fills.
	tr.Add(Phase("a"), time.Millisecond)
	if got := tr.Phases()[0]; got.Calls != 2 {
		t.Fatalf("slot a calls = %d, want 2", got.Calls)
	}
}
