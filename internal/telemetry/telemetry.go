// Package telemetry is the repo-wide observability layer: a
// zero-dependency, concurrency-safe metrics registry (atomic counters,
// gauges and fixed-bucket histograms), a lightweight per-query trace of
// evaluation phases, and exporters — Prometheus text exposition, a JSON
// snapshot, an optional net/http handler and a threshold-based slow-query
// log.
//
// The paper's two cost measures — bitmap scans (I/O) and bitmap operations
// (CPU) — are collected by core.Stats and storage.Metrics per call; those
// structs keep their APIs but also feed the process-wide Default registry
// here, so every layer (core evaluators, on-disk stores, the LRU pool, the
// buffer model and the engine's query plans) reports into one coherent
// surface. The well-known metric set lives in metrics.go and is documented
// in DESIGN.md.
//
// All registry mutations are lock-free atomic operations; creating or
// looking up a metric takes a mutex. A Trace is owned by one query but is
// itself safe for concurrent phase recording.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a programming error but is not checked on the
// hot path; the exporters render whatever accumulated).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 with compare-and-swap, for histogram
// sums.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// metricID renders the canonical identity of a metric: the name plus its
// sorted label set, e.g. `bix_ops_total{kind="and"}`. It doubles as the
// Prometheus sample line prefix and the JSON snapshot key.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Name, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}
