package telemetry

import (
	"fmt"
	"sync"
)

type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered time series: identity plus exactly one of the
// three instrument types.
type metric struct {
	name   string
	help   string
	labels []Label
	id     string
	kind   metricKind

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry is a named collection of metrics. Metric creation is
// get-or-create: asking for an existing (name, labels) pair returns the
// same instrument, so packages can declare their metrics independently.
// Requesting an existing id with a different instrument kind panics — that
// is a programming error, not a runtime condition.
type Registry struct {
	mu   sync.Mutex
	byID map[string]*metric // guarded by mu
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{byID: make(map[string]*metric)}
}

var defaultRegistry = New()

// Default returns the process-wide registry that the core evaluators,
// storage layer, bitmap pool and engine plans feed.
func Default() *Registry { return defaultRegistry }

func (r *Registry) get(name, help string, kind metricKind, labels []Label) *metric {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byID[id]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s already registered as %s, requested as %s", id, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: append([]Label(nil), labels...), id: id, kind: kind}
	switch kind {
	case counterKind:
		m.c = &Counter{}
	case gaugeKind:
		m.g = &Gauge{}
	}
	r.byID[id] = m
	return m
}

// Counter returns the counter with the given name and labels, creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.get(name, help, counterKind, labels).c
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.get(name, help, gaugeKind, labels).g
}

// Histogram returns the histogram with the given name, labels and bucket
// upper bounds, creating it on first use. The bounds of an already
// registered histogram are kept; they are fixed at creation.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byID[id]; ok {
		if m.kind != histogramKind {
			panic(fmt.Sprintf("telemetry: metric %s already registered as %s, requested as histogram", id, m.kind))
		}
		return m.h
	}
	m := &metric{name: name, help: help, labels: append([]Label(nil), labels...), id: id,
		kind: histogramKind, h: newHistogram(bounds)}
	r.byID[id] = m
	return m.h
}

// snapshotMetrics returns the registered metrics sorted by id, for the
// exporters.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.byID))
	for _, m := range r.byID {
		out = append(out, m)
	}
	sortMetrics(out)
	return out
}

func sortMetrics(ms []*metric) {
	// Sort by name first so same-name label variants stay adjacent for the
	// grouped # HELP / # TYPE headers, then by id for determinism.
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && less(ms[j], ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func less(a, b *metric) bool {
	if a.name != b.name {
		return a.name < b.name
	}
	return a.id < b.id
}
