package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// slowTrace builds a finished trace whose total is at least d (the trace
// measures wall clock, so we backdate the start instead of sleeping).
func slowTrace(name string, d time.Duration) *Trace {
	t := NewTrace(name)
	t.start = t.start.Add(-d)
	t.Add(PhaseFetch, d/2)
	return t
}

func TestSlowLogThresholdEdge(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, nil, 4)
	if l.Threshold() != 10*time.Millisecond {
		t.Fatalf("threshold = %v", l.Threshold())
	}
	if l.Observe("fast", slowTrace("fast", time.Millisecond)) {
		t.Error("1ms observed as slow against a 10ms threshold")
	}
	// At-threshold is slow: Observe keeps totals >= threshold, not just >.
	if !l.Observe("edge", slowTrace("edge", 10*time.Millisecond)) {
		t.Error("total exactly at threshold was not recorded")
	}
	if !l.Observe("slow", slowTrace("slow", time.Second)) {
		t.Error("1s observed as fast")
	}
	if got := len(l.Entries()); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
}

func TestSlowLogNilTraceIgnored(t *testing.T) {
	l := NewSlowLog(0, nil, 2)
	if l.Observe("nil", nil) {
		t.Error("nil trace recorded")
	}
	if len(l.Entries()) != 0 {
		t.Error("nil trace left an entry")
	}
}

// TestSlowLogRingRotation fills the ring past capacity and checks the
// retained window is the most recent keep entries, oldest first, across
// several full wrap-arounds.
func TestSlowLogRingRotation(t *testing.T) {
	const keep = 3
	l := NewSlowLog(0, nil, keep)

	// Partially filled: order preserved, no phantom entries.
	l.Observe("q0", slowTrace("q0", time.Millisecond))
	l.Observe("q1", slowTrace("q1", time.Millisecond))
	got := l.Entries()
	if len(got) != 2 || got[0].Query != "q0" || got[1].Query != "q1" {
		t.Fatalf("partial ring = %+v", got)
	}

	for i := 2; i < 11; i++ {
		l.Observe(fmt.Sprintf("q%d", i), slowTrace("q", time.Millisecond))
	}
	got = l.Entries()
	if len(got) != keep {
		t.Fatalf("full ring holds %d, want %d", len(got), keep)
	}
	for i, e := range got {
		if want := fmt.Sprintf("q%d", 11-keep+i); e.Query != want {
			t.Errorf("entry %d = %q, want %q", i, e.Query, want)
		}
	}
}

func TestSlowLogDefaultKeep(t *testing.T) {
	for _, keep := range []int{0, -5} {
		l := NewSlowLog(0, nil, keep)
		for i := 0; i < 40; i++ {
			l.Observe("q", slowTrace("q", time.Millisecond))
		}
		if got := len(l.Entries()); got != 32 {
			t.Errorf("keep=%d retained %d entries, want default 32", keep, got)
		}
	}
}

func TestSlowLogWriterLine(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(time.Millisecond, &buf, 2)
	l.Observe("A <= 7", slowTrace("A <= 7", 20*time.Millisecond))
	line := buf.String()
	if !strings.Contains(line, "slow query") || !strings.Contains(line, "A <= 7") {
		t.Fatalf("log line = %q", line)
	}
	if !strings.Contains(line, string(PhaseFetch)+"=") {
		t.Fatalf("log line missing phase breakdown: %q", line)
	}
	// Fast queries write nothing.
	buf.Reset()
	l.Observe("fast", slowTrace("fast", 0))
	if buf.Len() != 0 {
		t.Fatalf("fast query wrote %q", buf.String())
	}
}

// TestSlowLogTraceIDAndPlan checks entries join against flight-recorder
// records: the trace's unique ID is always retained, the plan summary when
// given, and both appear on the written line.
func TestSlowLogTraceIDAndPlan(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(0, &buf, 4)
	tr := slowTrace("A <= 7", 5*time.Millisecond)
	if !l.ObserveWithPlan("A <= 7", "P3-bitmapmerge", tr) {
		t.Fatal("slow query not recorded")
	}
	entries := l.Entries()
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.TraceID != tr.ID() || e.TraceID == "" {
		t.Errorf("entry TraceID = %q, want %q", e.TraceID, tr.ID())
	}
	if e.Plan != "P3-bitmapmerge" {
		t.Errorf("entry Plan = %q", e.Plan)
	}
	line := buf.String()
	if !strings.Contains(line, "trace="+tr.ID()) || !strings.Contains(line, "plan=P3-bitmapmerge") {
		t.Errorf("log line missing trace/plan: %q", line)
	}

	// Plain Observe still fills the trace ID, with no plan= clutter.
	buf.Reset()
	tr2 := slowTrace("B", 5*time.Millisecond)
	l.Observe("B", tr2)
	if got := l.Entries(); got[len(got)-1].TraceID != tr2.ID() {
		t.Errorf("Observe entry TraceID = %q, want %q", got[len(got)-1].TraceID, tr2.ID())
	}
	if strings.Contains(buf.String(), "plan=") {
		t.Errorf("plan-less line shows plan=: %q", buf.String())
	}
}

// TestSlowLogConcurrentObserveEntries hammers one SlowLog (with a shared
// writer) from concurrent recorders and readers; run under -race this is
// the regression test for the shared-writer data race and any ring
// publication race.
func TestSlowLogConcurrentObserveEntries(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(0, &buf, 8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				l.ObserveWithPlan("hammer", "plan", slowTrace("hammer", time.Millisecond))
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 400; i++ {
				for _, e := range l.Entries() {
					if e.Query != "hammer" && e.Query != "" {
						t.Errorf("unexpected entry %q", e.Query)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 6; i++ {
		<-done
	}
	if len(l.Entries()) != 8 {
		t.Fatalf("ring not full after hammer: %d", len(l.Entries()))
	}
}

// TestSlowLogObserveFinishesTrace checks Observe freezes the trace: the
// recorded total equals the trace's frozen Finish total, not a later
// re-measurement.
func TestSlowLogObserveFinishesTrace(t *testing.T) {
	l := NewSlowLog(0, nil, 2)
	tr := slowTrace("freeze", 5*time.Millisecond)
	l.Observe("freeze", tr)
	total := tr.Finish()
	entries := l.Entries()
	if len(entries) != 1 || entries[0].Total != total {
		t.Fatalf("entry total %v != frozen trace total %v", entries[0].Total, total)
	}
}
