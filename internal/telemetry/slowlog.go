package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// SlowEntry is one retained slow query.
type SlowEntry struct {
	Query  string        `json:"query"`
	Total  time.Duration `json:"ns"`
	Phases []PhaseRecord `json:"phases,omitempty"`
}

// SlowLog retains (and optionally writes) queries whose total evaluation
// time meets a threshold. It keeps the most recent entries in a ring and
// feeds SlowQueriesTotal. Safe for concurrent use.
type SlowLog struct {
	threshold time.Duration
	w         io.Writer // may be nil: retain only

	mu   sync.Mutex
	ring []SlowEntry // guarded by mu
	next int         // guarded by mu
	full bool        // guarded by mu
}

// NewSlowLog creates a slow-query log. Traces at or over threshold are
// kept (the most recent keep entries; keep <= 0 defaults to 32) and, when
// w is non-nil, written as one line each.
func NewSlowLog(threshold time.Duration, w io.Writer, keep int) *SlowLog {
	if keep <= 0 {
		keep = 32
	}
	return &SlowLog{threshold: threshold, w: w, ring: make([]SlowEntry, keep)}
}

// Threshold returns the configured threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Observe finishes the trace and records it if it is slow, returning
// whether it was recorded. A nil trace is ignored.
func (l *SlowLog) Observe(query string, t *Trace) bool {
	if t == nil {
		return false
	}
	total := t.Finish()
	if total < l.threshold {
		return false
	}
	SlowQueriesTotal.Inc()
	e := SlowEntry{Query: query, Total: total, Phases: t.Phases()}
	l.mu.Lock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.next == 0 {
		l.full = true
	}
	w := l.w
	l.mu.Unlock()
	if w != nil {
		var phases string
		for i, r := range e.Phases {
			if i > 0 {
				phases += " "
			}
			phases += fmt.Sprintf("%s=%v", r.Phase, r.Duration)
		}
		fmt.Fprintf(w, "slow query (%v >= %v): %s [%s]\n", total, l.threshold, query, phases)
	}
	return true
}

// Entries returns the retained slow queries, oldest first.
func (l *SlowLog) Entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []SlowEntry
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	return out
}
