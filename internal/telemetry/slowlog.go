package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// SlowEntry is one retained slow query. TraceID carries the trace's unique
// identifier so slow-log lines can be joined against flight-recorder
// records and exemplar buckets; Plan is the caller's one-line plan summary
// (evaluator kind or engine plan), empty when the caller has none.
type SlowEntry struct {
	Query   string        `json:"query"`
	TraceID string        `json:"trace_id,omitempty"`
	Plan    string        `json:"plan,omitempty"`
	Total   time.Duration `json:"ns"`
	Phases  []PhaseRecord `json:"phases,omitempty"`
}

// SlowLog retains (and optionally writes) queries whose total evaluation
// time meets a threshold. It keeps the most recent entries in a ring and
// feeds SlowQueriesTotal. Safe for concurrent use, including concurrent
// Observe calls sharing one io.Writer.
type SlowLog struct {
	threshold time.Duration
	w         io.Writer // may be nil: retain only; writes guarded by mu

	mu   sync.Mutex
	ring []SlowEntry // guarded by mu
	next int         // guarded by mu
	full bool        // guarded by mu
}

// NewSlowLog creates a slow-query log. Traces at or over threshold are
// kept (the most recent keep entries; keep <= 0 defaults to 32) and, when
// w is non-nil, written as one line each.
func NewSlowLog(threshold time.Duration, w io.Writer, keep int) *SlowLog {
	if keep <= 0 {
		keep = 32
	}
	return &SlowLog{threshold: threshold, w: w, ring: make([]SlowEntry, keep)}
}

// Threshold returns the configured threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Observe finishes the trace and records it if it is slow, returning
// whether it was recorded. A nil trace is ignored. The entry's TraceID is
// taken from the trace; use ObserveWithPlan to attach a plan summary too.
func (l *SlowLog) Observe(query string, t *Trace) bool {
	return l.ObserveWithPlan(query, "", t)
}

// ObserveWithPlan is Observe with a plan-summary string retained (and
// written) alongside the query, so slow-log output joins against the
// flight recorder's plan-tagged records.
func (l *SlowLog) ObserveWithPlan(query, plan string, t *Trace) bool {
	if t == nil {
		return false
	}
	total := t.Finish()
	if total < l.threshold {
		return false
	}
	SlowQueriesTotal.Inc()
	e := SlowEntry{Query: query, TraceID: t.ID(), Plan: plan, Total: total, Phases: t.Phases()}
	l.mu.Lock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.next == 0 {
		l.full = true
	}
	// The line write stays under mu: interleaving Fprintf calls on a shared
	// writer from concurrent Observes is a data race on plain writers
	// (bytes.Buffer, bufio) and garbles output even on race-safe ones.
	if l.w != nil {
		var phases string
		for i, r := range e.Phases {
			if i > 0 {
				phases += " "
			}
			phases += fmt.Sprintf("%s=%v", r.Phase, r.Duration)
		}
		detail := ""
		if e.Plan != "" {
			detail = " plan=" + e.Plan
		}
		fmt.Fprintf(l.w, "slow query (%v >= %v): %s trace=%s%s [%s]\n",
			total, l.threshold, query, e.TraceID, detail, phases)
	}
	l.mu.Unlock()
	return true
}

// Entries returns the retained slow queries, oldest first.
func (l *SlowLog) Entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []SlowEntry
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	return out
}
