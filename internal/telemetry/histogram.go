package telemetry

import (
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with atomic counters. Buckets are
// defined by their inclusive upper bounds; an implicit +Inf bucket catches
// the overflow, matching Prometheus histogram semantics. Each bucket can
// additionally hold one exemplar — the most recent observation recorded
// with ObserveExemplar — linking the bucket back to a concrete trace ID.
type Histogram struct {
	bounds    []float64      // strictly increasing upper bounds
	counts    []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count     atomic.Int64
	sum       atomicFloat
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, last-write-wins per bucket
}

// Exemplar ties one observation to the trace that produced it, in the
// spirit of OpenMetrics exemplars: a recent raw value per bucket plus the
// trace ID to look up for detail. Exported in the JSON snapshot only (the
// 0.0.4 text format predates exemplars).
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveN records n identical observations of v in one shot — the bulk
// path the runtime sampler uses to replay runtime/metrics histogram bucket
// deltas without n atomic round trips.
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.count.Add(n)
	h.sum.Add(v * float64(n))
}

// ObserveExemplar records one observation and stamps its bucket's exemplar
// with the trace ID (last write wins; an empty ID records no exemplar).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
}

// BucketExemplar returns the exemplar of bucket i (0..len(Bounds()), the
// last being +Inf), or nil when that bucket has none yet.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Bounds returns the configured upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Cumulative returns the cumulative count per bucket, ending with the +Inf
// bucket (which equals Count up to concurrent-update skew).
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var c int64
	for i := range h.counts {
		c += h.counts[i].Load()
		out[i] = c
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the containing bucket, the standard Prometheus histogram_quantile
// estimate. Observations in the +Inf bucket clamp to the highest finite
// bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	cum := h.Cumulative()
	total := cum[len(cum)-1]
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	for i, c := range cum {
		if float64(c) < target {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		var below int64
		if i > 0 {
			lower = h.bounds[i-1]
			below = cum[i-1]
		}
		width := h.bounds[i] - lower
		in := c - below
		if in == 0 {
			return h.bounds[i]
		}
		return lower + width*(target-float64(below))/float64(in)
	}
	return h.bounds[len(h.bounds)-1]
}
