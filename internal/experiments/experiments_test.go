package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg(t *testing.T) Config {
	t.Helper()
	cfg := Default()
	cfg.Rows = 8000
	cfg.Quick = true
	cfg.TempDir = t.TempDir()
	return cfg
}

// TestAllExperimentsRun executes every experiment at quick scale and spot
// checks a marker string in each output.
func TestAllExperimentsRun(t *testing.T) {
	markers := map[string]string{
		"intro":             "crossover",
		"table1":            "RangeEval-Opt",
		"fig8":              "scans_opt",
		"fig9":              "dominates",
		"fig10":             "space-optimal",
		"fig11":             "<- knee",
		"knee":              "matches:",
		"fig13":             "optimum",
		"fig14":             "candidates",
		"table2":            "pct_optimal",
		"table3":            "OrderDate",
		"table4":            "cCS%",
		"fig16":             "decompress%",
		"fig17":             "Theorem 10.2",
		"ablation-wah":      "wah_bytes",
		"ablation-interval": "single-component",
		"ablation-agg":      "bitsliced_us",
		"ablation-cache":    "hit_rate",
		"ablation-refine":   "refined_time",
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(quickCfg(t), &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("%s: suspiciously short output:\n%s", e.ID, out)
			}
			marker, ok := markers[e.ID]
			if !ok {
				t.Fatalf("no marker registered for %s", e.ID)
			}
			if !strings.Contains(out, marker) {
				t.Fatalf("%s: output missing marker %q:\n%s", e.ID, marker, out)
			}
		})
	}
}

func TestIntroCrossoverNearPrediction(t *testing.T) {
	var buf bytes.Buffer
	e, ok := Find("intro")
	if !ok {
		t.Fatal("intro not registered")
	}
	if err := e.Run(quickCfg(t), &buf); err != nil {
		t.Fatal(err)
	}
	// The crossover must land within one geometric step of 1/32.
	out := buf.String()
	if !strings.Contains(out, "measured crossover at selectivity 0.0") {
		t.Fatalf("unexpected crossover line in:\n%s", out)
	}
}

func TestFindAndIDs(t *testing.T) {
	if _, ok := Find("nope"); ok {
		t.Fatal("Find(nope) should fail")
	}
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs() returned %d, want %d", len(ids), len(All()))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("IDs not sorted")
		}
	}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e)
		}
	}
}

func TestLinearForm(t *testing.T) {
	cases := []struct {
		f    func(n int) int
		want string
	}{
		{func(n int) int { return 2 * n }, "2n"},
		{func(n int) int { return n }, "n"},
		{func(n int) int { return n + 1 }, "n+1"},
		{func(n int) int { return n - 1 }, "n-1"},
		{func(n int) int { return 2*n - 2 }, "2n-2"},
		{func(n int) int { return 5 }, "5"},
		{func(n int) int { return 0 }, "0"},
		{func(n int) int { return 3*n + 2 }, "3n+2"},
	}
	for _, c := range cases {
		if got := linearForm(c.f); got != c.want {
			t.Errorf("linearForm = %q, want %q", got, c.want)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	cfg := quickCfg(t)
	cfg.CSV = true
	e, ok := Find("fig14")
	if !ok {
		t.Fatal("fig14 missing")
	}
	var buf bytes.Buffer
	if err := e.Run(cfg, cfg.Writer(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# Figure 14") {
		t.Fatalf("missing comment header:\n%s", out)
	}
	if !strings.Contains(out, "M,n,n',candidates") {
		t.Fatalf("missing CSV header row:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[2:] {
		if !strings.Contains(line, ",") {
			t.Fatalf("non-CSV data line %q", line)
		}
	}
}
