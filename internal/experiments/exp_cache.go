package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"bitmapindex/internal/buffer"
	"bitmapindex/internal/core"
	"bitmapindex/internal/data"
	"bitmapindex/internal/storage"
)

// runAblationCache runs Section 10's buffering model against a live LRU
// bitmap pool over the on-disk store: steady-state scans per query as a
// function of pool capacity, next to the eq. (5) prediction for the
// optimal static assignment.
func runAblationCache(cfg Config, w io.Writer) error {
	rows := cfg.Rows
	if cfg.Quick && rows > 10000 {
		rows = 10000
	}
	base := core.Base{8, 7} // C = 56, 13 stored bitmaps
	card, _ := base.Product()
	col := data.Uniform(rows, card, cfg.Seed)
	ix, err := core.Build(col.Values, col.Card, base, core.RangeEncoded, nil)
	if err != nil {
		return err
	}
	root, cleanup, err := storageDir(cfg)
	if err != nil {
		return err
	}
	defer cleanup()
	dir := filepath.Join(root, "cache")
	st, err := storage.Save(ix, dir, storage.Options{Scheme: storage.BitmapLevel, Compress: true})
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	section(w, "LRU bitmap pool vs eq.(5): base %v, C = %d, N = %d", base, card, rows)
	t := newTable(w)
	t.row("capacity", "measured_scans/q", "eq5_optimal", "hit_rate")
	queries := 3000
	if cfg.Quick {
		queries = 800
	}
	for _, m := range []int{0, 1, 2, 4, 6, 8, 13} {
		cs, err := storage.NewCached(st, m)
		if err != nil {
			return err
		}
		r := rand.New(rand.NewSource(cfg.Seed))
		run := func(n int) float64 {
			var met storage.Metrics
			for k := 0; k < n; k++ {
				op := core.AllOps[r.Intn(6)]
				v := uint64(r.Intn(int(card)))
				if _, err := cs.Eval(op, v, &met); err != nil {
					panic(err)
				}
			}
			return float64(met.Stats.Scans) / float64(n)
		}
		run(queries / 5) // warm up
		measured := run(queries)
		model := buffer.Time(base, card, buffer.Optimal(base, card, m))
		t.row(m, fmt.Sprintf("%.3f", measured), fmt.Sprintf("%.3f", model),
			fmt.Sprintf("%.2f", cs.HitRate()))
	}
	return t.flush()
}
