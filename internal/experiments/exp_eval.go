package experiments

import (
	"fmt"
	"io"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/engine"
)

// runIntro reproduces the Section 1 cost analysis: with 4-byte RIDs and a
// one-bitmap equality probe, the bitmap plan reads fewer bytes than the
// RID-list plan once the query selects at least 1/32 of the relation.
func runIntro(cfg Config, w io.Writer) error {
	n := cfg.Rows
	if cfg.Quick && n > 16000 {
		n = 16000
	}
	// The paper's analysis assumes one bitmap read per (equality)
	// predicate on a Value-List index. A geometric value distribution
	// lets equality queries sweep selectivity from 1/2 down to 1/2^15:
	// value k occupies ~n/2^(k+1) rows.
	const card = 16
	vals := make([]uint64, n)
	pos := 0
	for k := 0; k < card && pos < n; k++ {
		cnt := n >> uint(k+1)
		if k == card-1 || cnt < 1 {
			cnt = n - pos
		}
		for i := 0; i < cnt && pos < n; i++ {
			vals[pos] = uint64(k)
			pos++
		}
	}
	rel := engine.NewRelation("r")
	col, err := rel.AddRanked("a", vals, card)
	if err != nil {
		return err
	}
	col.BuildRIDIndex()
	if err := col.BuildBitmapIndex(nil, core.EqualityEncoded); err != nil {
		return err
	}
	section(w, "Section 1: plan P3 with bitmap vs RID-list indexes (N=%d, 4-byte RIDs, equality queries)", n)
	t := newTable(w)
	t.row("selectivity", "result_rows", "rid_bytes", "bitmap_bytes", "winner")
	crossover := -1.0
	for k := card - 1; k >= 0; k-- {
		preds := []engine.Pred{{Col: "a", Op: core.Eq, Val: int64(k)}}
		_, ridCost, err := rel.Select(preds, engine.RIDMerge)
		if err != nil {
			return err
		}
		_, bmCost, err := rel.Select(preds, engine.BitmapMerge)
		if err != nil {
			return err
		}
		sel := float64(ridCost.Rows) / float64(n)
		winner := "rid-list"
		if bmCost.BytesRead <= ridCost.BytesRead {
			winner = "bitmap"
			if crossover < 0 || sel < crossover {
				crossover = sel
			}
		}
		t.row(fmt.Sprintf("%.5f", sel), ridCost.Rows, ridCost.BytesRead, bmCost.BytesRead, winner)
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "measured crossover at selectivity %.5f; analysis predicts 1/32 = %.5f\n", crossover, 1.0/32)
	return nil
}

// linearForm renders a count that is linear in n (sampled at n=2 and n=3)
// as a formula like "2n-1".
func linearForm(f func(n int) int) string {
	a := f(3) - f(2)
	b := f(2) - 2*a
	switch {
	case a == 0:
		return fmt.Sprintf("%d", b)
	case b == 0 && a == 1:
		return "n"
	case b == 0:
		return fmt.Sprintf("%dn", a)
	case a == 1 && b > 0:
		return fmt.Sprintf("n+%d", b)
	case a == 1:
		return fmt.Sprintf("n%d", b)
	case b > 0:
		return fmt.Sprintf("%dn+%d", a, b)
	default:
		return fmt.Sprintf("%dn%d", a, b)
	}
}

// runTable1 prints the worst-case analysis of the two evaluation
// algorithms as formulas in the number of components n, then verifies the
// totals against instrumented maxima at n = 3.
func runTable1(cfg Config, w io.Writer) error {
	section(w, "Table 1: worst-case bitmap operations and scans (formulas in n)")
	t := newTable(w)
	t.row("algorithm", "predicate", "AND", "OR", "XOR", "NOT", "total", "scans")
	type alg struct {
		name string
		f    func(core.Op, int) cost.OpCounts
	}
	for _, a := range []alg{{"RangeEval", cost.WorstCaseNaive}, {"RangeEval-Opt", cost.WorstCaseOpt}} {
		for _, op := range []core.Op{core.Le, core.Lt, core.Ge, core.Gt, core.Eq, core.Ne} {
			get := func(sel func(cost.OpCounts) int) string {
				return linearForm(func(n int) int { return sel(a.f(op, n)) })
			}
			t.row(a.name, "A "+op.String()+" c",
				get(func(c cost.OpCounts) int { return c.Ands }),
				get(func(c cost.OpCounts) int { return c.Ors }),
				get(func(c cost.OpCounts) int { return c.Xors }),
				get(func(c cost.OpCounts) int { return c.Nots }),
				get(func(c cost.OpCounts) int { return c.Total() }),
				get(func(c cost.OpCounts) int { return c.Scans }))
		}
	}
	if err := t.flush(); err != nil {
		return err
	}

	// Instrumented verification at n = 3 (base <5,5,5>, C = 125).
	base := core.Base{5, 5, 5}
	card, _ := base.Product()
	ix, err := core.Build([]uint64{0}, card, base, core.RangeEncoded, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmeasured maxima over all %d queries at n=3, base %v:\n", 6*card, base)
	t = newTable(w)
	t.row("predicate", "naive_ops", "naive_scans", "opt_ops", "opt_scans", "ops_reduction")
	for _, op := range core.AllOps {
		var maxN, maxNS, maxO, maxOS int
		for v := uint64(0); v < card; v++ {
			var sn, so core.Stats
			ix.EvalRangeNaive(op, v, &core.EvalOptions{Stats: &sn})
			ix.EvalRangeOpt(op, v, &core.EvalOptions{Stats: &so})
			if sn.Ops() > maxN {
				maxN = sn.Ops()
			}
			if sn.Scans > maxNS {
				maxNS = sn.Scans
			}
			if so.Ops() > maxO {
				maxO = so.Ops()
			}
			if so.Scans > maxOS {
				maxOS = so.Scans
			}
		}
		t.row("A "+op.String()+" c", maxN, maxNS, maxO, maxOS,
			fmt.Sprintf("%.0f%%", 100*(1-float64(maxO)/float64(maxN))))
	}
	return t.flush()
}

// runFig8 reproduces Figure 8: average bitmap scans (a) and operations (b)
// per query as a function of the base number b, for uniform base-b
// range-encoded indexes, comparing RangeEval with RangeEval-Opt.
func runFig8(cfg Config, w io.Writer) error {
	cards := []uint64{100}
	if !cfg.Quick {
		cards = append(cards, 1000)
	}
	for _, card := range cards {
		section(w, "Figure 8: RangeEval vs RangeEval-Opt, uniform bases, C = %d", card)
		t := newTable(w)
		t.row("base", "n", "scans_naive", "scans_opt", "ops_naive", "ops_opt")
		// Dense points for small bases where the curves bend, sampled
		// beyond (they are smooth there).
		var bases []uint64
		for b := uint64(2); b <= card; b++ {
			if b <= 32 || (b%16 == 0 && b <= 128) || b%64 == 0 || b == card {
				bases = append(bases, b)
			}
		}
		for _, b := range bases {
			base := core.UniformFor(b, card)
			ix, err := core.Build([]uint64{0}, card, base, core.RangeEncoded, nil)
			if err != nil {
				return err
			}
			var sn, so core.Stats
			for _, op := range core.AllOps {
				for v := uint64(0); v < card; v++ {
					ix.EvalRangeNaive(op, v, &core.EvalOptions{Stats: &sn})
					ix.EvalRangeOpt(op, v, &core.EvalOptions{Stats: &so})
				}
			}
			q := float64(6 * card)
			t.row(b, base.N(),
				fmt.Sprintf("%.3f", float64(sn.Scans)/q),
				fmt.Sprintf("%.3f", float64(so.Scans)/q),
				fmt.Sprintf("%.3f", float64(sn.Ops())/q),
				fmt.Sprintf("%.3f", float64(so.Ops())/q))
		}
		if err := t.flush(); err != nil {
			return err
		}
	}
	return nil
}
