package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/design"
)

// runFig9 reproduces Figure 9: the space-time tradeoff of range- vs
// equality-encoded indexes, shown as each encoding's optimal frontier.
func runFig9(cfg Config, w io.Writer) error {
	cards := []uint64{25, 100}
	if !cfg.Quick {
		cards = append(cards, 1000)
	}
	for _, card := range cards {
		section(w, "Figure 9: range vs equality encoding, C = %d", card)
		t := newTable(w)
		t.row("encoding", "base", "space(bitmaps)", "time(exp.scans)")
		for _, enc := range []core.Encoding{core.RangeEncoded, core.EqualityEncoded} {
			for _, p := range design.Frontier(card, enc) {
				t.row(enc, p.Base, p.Space, fmt.Sprintf("%.3f", p.Time))
			}
		}
		if err := t.flush(); err != nil {
			return err
		}
		// Summarize the domination claim.
		rf := design.Frontier(card, core.RangeEncoded)
		ef := design.Frontier(card, core.EqualityEncoded)
		dominated := 0
		for _, e := range ef {
			for _, r := range rf {
				if r.Space <= e.Space && r.Time <= e.Time+1e-9 {
					dominated++
					break
				}
			}
		}
		fmt.Fprintf(w, "range encoding dominates %d of %d equality frontier points\n", dominated, len(ef))
	}
	return nil
}

// runFig10 reproduces Figure 10: the space-optimal and time-optimal index
// classes against the frontier over all indexes.
func runFig10(cfg Config, w io.Writer) error {
	card := uint64(100)
	if !cfg.Quick {
		card = 1000
	}
	section(w, "Figure 10: index classes, C = %d", card)
	t := newTable(w)
	t.row("class", "n", "base", "space", "time")
	for n := 1; n <= design.MaxComponents(card); n++ {
		b, err := design.SpaceOptimalBest(card, n)
		if err != nil {
			return err
		}
		t.row("space-optimal", n, b, cost.SpaceRange(b), fmt.Sprintf("%.3f", cost.TimeRange(b, card)))
	}
	for n := 1; n <= design.MaxComponents(card); n++ {
		b, err := design.TimeOptimal(card, n)
		if err != nil {
			return err
		}
		t.row("time-optimal", n, b, cost.SpaceRange(b), fmt.Sprintf("%.3f", cost.TimeRange(b, card)))
	}
	front := design.Frontier(card, core.RangeEncoded)
	for _, p := range front {
		t.row("all-frontier", p.Base.N(), p.Base, p.Space, fmt.Sprintf("%.3f", p.Time))
	}
	if err := t.flush(); err != nil {
		return err
	}
	// The paper's observation: the space-optimal points lie on the
	// all-index frontier.
	onFrontier := 0
	for n := 1; n <= design.MaxComponents(card); n++ {
		b, _ := design.SpaceOptimalBest(card, n)
		s, tm := cost.SpaceRange(b), cost.TimeRange(b, card)
		for _, p := range front {
			if p.Space == s && math.Abs(p.Time-tm) < 1e-9 {
				onFrontier++
				break
			}
		}
	}
	fmt.Fprintf(w, "space-optimal points on the all-index frontier: %d of %d\n",
		onFrontier, design.MaxComponents(card))
	return nil
}

// runFig11 reproduces Figure 11: the space-optimal tradeoff with each
// point labelled by its number of components; the knee sits at n = 2.
func runFig11(cfg Config, w io.Writer) error {
	card := uint64(100)
	if !cfg.Quick {
		card = 1000
	}
	section(w, "Figure 11: space-optimal tradeoff by components, C = %d", card)
	t := newTable(w)
	t.row("n", "base", "space", "time", "note")
	knee, err := design.Knee(card)
	if err != nil {
		return err
	}
	for n := 1; n <= design.MaxComponents(card); n++ {
		b, err := design.SpaceOptimalBest(card, n)
		if err != nil {
			return err
		}
		note := ""
		if b.Equal(knee) {
			note = "<- knee"
		}
		t.row(n, b, cost.SpaceRange(b), fmt.Sprintf("%.3f", cost.TimeRange(b, card)), note)
	}
	return t.flush()
}

// runKnee validates Theorem 7.1 over a sweep of cardinalities: the most
// time-efficient 2-component space-optimal index against the definitional
// knee of the tradeoff graph.
func runKnee(cfg Config, w io.Writer) error {
	cards := []uint64{10, 16, 25, 50, 64, 100, 250, 500, 1000}
	if !cfg.Quick {
		cards = append(cards, 2406, 4096)
	}
	section(w, "Theorem 7.1: knee characterization")
	t := newTable(w)
	t.row("C", "approx_knee", "definitional_knee", "space", "time", "match")
	matches := 0
	for _, card := range cards {
		approx, err := design.Knee(card)
		if err != nil {
			return err
		}
		def, err := design.KneeByDefinition(card)
		if err != nil {
			return err
		}
		match := approx.Equal(def.Base)
		if match {
			matches++
		}
		t.row(card, approx, def.Base, def.Space, fmt.Sprintf("%.3f", def.Time), match)
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "matches: %d of %d cardinalities (the paper reports exact matches on its sweep)\n",
		matches, len(cards))
	return nil
}

// runFig13 illustrates the Figure 13 bounds: the constrained optimum has
// between n and n' components.
func runFig13(cfg Config, w io.Writer) error {
	cases := []struct {
		card uint64
		m    int
	}{{1000, 80}, {1000, 400}}
	for _, c := range cases {
		n, np, err := design.ComponentBounds(c.card, c.m)
		if err != nil {
			return err
		}
		section(w, "Figure 13: C = %d, M = %d -> n = %d, n' = %d", c.card, c.m, n, np)
		t := newTable(w)
		t.row("k", "space-opt_space", "time-opt_space", "fits(space-opt)", "fits(time-opt)")
		for k := 1; k <= design.MaxComponents(c.card); k++ {
			so, err := design.MinSpace(c.card, k)
			if err != nil {
				return err
			}
			tb, err := design.TimeOptimal(c.card, k)
			if err != nil {
				return err
			}
			ts := cost.SpaceRange(tb)
			t.row(k, so, ts, so <= c.m, ts <= c.m)
		}
		if err := t.flush(); err != nil {
			return err
		}
		opt, err := design.TimeOptUnderSpace(c.card, c.m)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "optimum %v has %d components (within [%d, %d])\n", opt, opt.N(), n, np)
	}
	return nil
}

// runFig14 reproduces Figure 14: the size of TimeOptAlg's candidate set as
// a function of the space constraint M.
func runFig14(cfg Config, w io.Writer) error {
	card := uint64(1000)
	ms := []int{15, 20, 30, 40, 60, 80, 100, 150, 200, 300, 500, 700, 999}
	if cfg.Quick {
		card = 100
		ms = []int{8, 12, 20, 40, 60, 99}
	}
	section(w, "Figure 14: |I| vs space constraint M, C = %d", card)
	t := newTable(w)
	t.row("M", "n", "n'", "candidates")
	for _, m := range ms {
		n, np, err := design.ComponentBounds(card, m)
		if err != nil {
			return err
		}
		count, err := design.CandidateCount(card, m)
		if err != nil {
			return err
		}
		t.row(m, n, np, count)
	}
	return t.flush()
}

// runTable2 reproduces Table 2: how often the heuristic finds the true
// optimum, and the worst expected-scan gap when it does not. The optimum
// per M is computed from one shared enumeration (prefix minima of the
// frontier) rather than per-M search.
func runTable2(cfg Config, w io.Writer) error {
	cards := []uint64{25, 100, 1000, 10000}
	if cfg.Quick {
		cards = []uint64{25, 100}
	}
	section(w, "Table 2: effectiveness of Algorithm TimeOptHeur")
	t := newTable(w)
	t.row("C", "constraints_tested", "pct_optimal", "max_scan_gap")
	for _, card := range cards {
		type pt struct {
			space int
			time  float64
		}
		var pts []pt
		design.EnumerateMinimal(card, design.MaxComponents(card), func(b core.Base) {
			pts = append(pts, pt{cost.SpaceRange(b), cost.TimeRange(b, card)})
		})
		sort.Slice(pts, func(i, j int) bool { return pts[i].space < pts[j].space })
		// bestAt(m) = min time over points with space <= m.
		bestAt := func(m int) float64 {
			best := math.Inf(1)
			for _, p := range pts {
				if p.space > m {
					break
				}
				if p.time < best {
					best = p.time
				}
			}
			return best
		}
		total, optimal := 0, 0
		maxGap := 0.0
		step := 1
		switch {
		case card >= 10000:
			step = 71
		case card >= 1000:
			step = 7
		}
		for m := design.MaxComponents(card); m < int(card); m += step {
			heur, err := design.TimeOptHeuristic(card, m)
			if err != nil {
				return err
			}
			ht := cost.TimeRange(heur, card)
			ot := bestAt(m)
			total++
			if ht-ot < 1e-9 {
				optimal++
			} else if g := ht - ot; g > maxGap {
				maxGap = g
			}
		}
		t.row(card, total,
			fmt.Sprintf("%.1f%%", 100*float64(optimal)/float64(total)),
			fmt.Sprintf("%.3f", maxGap))
	}
	return t.flush()
}

// runAblationRefine shows what each stage of the heuristic contributes:
// the FindSmallestN seed, the refined index, and the true optimum.
func runAblationRefine(cfg Config, w io.Writer) error {
	card := uint64(1000)
	ms := []int{15, 25, 40, 60, 100, 200, 400}
	if cfg.Quick {
		card = 100
		ms = []int{8, 12, 20, 40}
	}
	section(w, "RefineIndex ablation, C = %d", card)
	t := newTable(w)
	t.row("M", "seed", "seed_time", "refined", "refined_time", "optimal_time")
	for _, m := range ms {
		_, seed, err := design.FindSmallestN(card, m)
		if err != nil {
			return err
		}
		refined := design.RefineIndex(seed, card)
		opt, err := design.TimeOptUnderSpace(card, m)
		if err != nil {
			return err
		}
		t.row(m, seed, fmt.Sprintf("%.3f", cost.TimeRange(seed, card)),
			refined, fmt.Sprintf("%.3f", cost.TimeRange(refined, card)),
			fmt.Sprintf("%.3f", cost.TimeRange(opt, card)))
	}
	return t.flush()
}
