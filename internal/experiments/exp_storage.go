package experiments

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/core"
	"bitmapindex/internal/data"
	"bitmapindex/internal/design"
	"bitmapindex/internal/storage"
	"bitmapindex/internal/wah"
)

// dataSets returns the two TPC-D-style columns of Table 3, scaled to
// cfg.Rows.
func dataSets(cfg Config) []data.Column {
	rows := cfg.Rows
	if cfg.Quick && rows > 20000 {
		rows = 20000
	}
	return []data.Column{
		data.LineitemQuantity(rows, cfg.Seed),
		data.OrderDate(rows, cfg.Seed+1),
	}
}

// runTable3 prints the characteristics of the experimental data (the
// paper's Table 3, with the scaled-down relation cardinality).
func runTable3(cfg Config, w io.Writer) error {
	section(w, "Table 3: characteristics of the TPC-D-style data sets")
	t := newTable(w)
	t.row("", "data set 1", "data set 2")
	ds := dataSets(cfg)
	t.row("relation", "Lineitem", "Order")
	t.row("relation cardinality (paper)", 6001215, 1500000)
	t.row("relation cardinality (here)", ds[0].Rows(), ds[1].Rows())
	t.row("attribute", "Quantity", "OrderDate")
	t.row("attribute cardinality C", ds[0].Card, ds[1].Card)
	return t.flush()
}

// storageDir returns a working directory for on-disk indexes.
func storageDir(cfg Config) (string, func(), error) {
	if cfg.TempDir != "" {
		return cfg.TempDir, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "bitmapindex-exp-")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { _ = os.RemoveAll(dir) }, nil
}

// table4Bases returns the space-optimal bases used for the storage
// experiments of a data set: 6 consecutive component counts, starting at
// n = 1 for small cardinalities and n = 2 for large ones (a
// single-component index over C = 2406 stores 2,405 bitmaps).
func table4Bases(card uint64) ([]core.Base, error) {
	start := 1
	if card > 1000 {
		start = 2
	}
	var out []core.Base
	for n := start; n < start+6 && n <= design.MaxComponents(card); n++ {
		b, err := design.SpaceOptimalBest(card, n)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// runTable4 reproduces Table 4: on-disk size of each storage scheme as a
// percentage of the uncompressed BS size, for space-optimal indexes of
// increasing component count over both data sets.
func runTable4(cfg Config, w io.Writer) error {
	root, cleanup, err := storageDir(cfg)
	if err != nil {
		return err
	}
	defer cleanup()
	for di, col := range dataSets(cfg) {
		bases, err := table4Bases(col.Card)
		if err != nil {
			return err
		}
		section(w, "Table 4(%c): %s, N = %d, C = %d", 'a'+di, col.Name, col.Rows(), col.Card)
		t := newTable(w)
		t.row("base", "BS_bytes", "cBS%", "cCS%", "cIS%")
		for bi, base := range bases {
			ix, err := core.Build(col.Values, col.Card, base, core.RangeEncoded, nil)
			if err != nil {
				return err
			}
			sizes := map[string]int64{}
			for _, opts := range []storage.Options{
				{Scheme: storage.BitmapLevel},
				{Scheme: storage.BitmapLevel, Compress: true},
				{Scheme: storage.ComponentLevel, Compress: true},
				{Scheme: storage.IndexLevel, Compress: true},
			} {
				dir := filepath.Join(root, fmt.Sprintf("t4_%d_%d_%s", di, bi, opts))
				st, err := storage.Save(ix, dir, opts)
				if err != nil {
					return err
				}
				sizes[opts.String()] = st.ValueBytes()
			}
			pct := func(k string) string {
				return fmt.Sprintf("%.1f", 100*float64(sizes[k])/float64(sizes["BS"]))
			}
			t.row(base, sizes["BS"], pct("cBS"), pct("cCS"), pct("cIS"))
		}
		if err := t.flush(); err != nil {
			return err
		}
	}
	return nil
}

// runFig16 reproduces Figure 16: average query evaluation time (a), space
// (b), and the combined tradeoff (c) for BS-, cBS- and cCS-indexes on data
// set 1, per component count. Queries follow the paper's restricted set
// Q' = {A <= v, A = v : 0 <= v < C}.
func runFig16(cfg Config, w io.Writer) error {
	root, cleanup, err := storageDir(cfg)
	if err != nil {
		return err
	}
	defer cleanup()
	col := dataSets(cfg)[0]
	bases, err := table4Bases(col.Card)
	if err != nil {
		return err
	}
	section(w, "Figure 16: %s, N = %d, C = %d; avg over %d queries (<=, =)", col.Name, col.Rows(), col.Card, 2*col.Card)
	t := newTable(w)
	t.row("n", "base", "layout", "space_bytes", "avg_time_us", "read%", "decompress%", "extract%", "bytes/query")
	for _, base := range bases {
		ix, err := core.Build(col.Values, col.Card, base, core.RangeEncoded, nil)
		if err != nil {
			return err
		}
		for _, opts := range []storage.Options{
			{Scheme: storage.BitmapLevel},
			{Scheme: storage.BitmapLevel, Compress: true},
			{Scheme: storage.ComponentLevel, Compress: true},
		} {
			dir := filepath.Join(root, fmt.Sprintf("f16_%d_%s", base.N(), opts))
			st, err := storage.Save(ix, dir, opts)
			if err != nil {
				return err
			}
			var m storage.Metrics
			t0 := time.Now()
			for _, op := range []core.Op{core.Le, core.Eq} {
				for v := uint64(0); v < col.Card; v++ {
					if _, err := st.Eval(op, v, &m); err != nil {
						return err
					}
				}
			}
			total := time.Since(t0).Nanoseconds()
			q := int64(2 * col.Card)
			pct := func(ns int64) string { return fmt.Sprintf("%.0f%%", 100*float64(ns)/float64(total)) }
			t.row(base.N(), base, opts, st.ValueBytes(),
				fmt.Sprintf("%.1f", float64(total)/float64(q)/1000),
				pct(m.ReadNS), pct(m.DecompressNS), pct(m.ExtractNS),
				m.BytesRead/q)
		}
	}
	return t.flush()
}

// runAblationWAH compares zlib (the paper's compressor) with WAH-style
// run-length compression per bitmap: compressed size, and the time to AND
// two bitmaps including any decompression.
func runAblationWAH(cfg Config, w io.Writer) error {
	rows := cfg.Rows
	if cfg.Quick && rows > 20000 {
		rows = 20000
	}
	cols := []data.Column{
		data.LineitemQuantity(rows, cfg.Seed),
		data.Clustered(rows, 50, 64, cfg.Seed+2),
	}
	section(w, "Ablation: zlib vs WAH per-bitmap compression (N = %d)", rows)
	t := newTable(w)
	t.row("column", "base", "raw_bytes", "zlib_bytes", "wah_bytes", "zlib_and_us", "wah_and_us")
	for _, col := range cols {
		base, err := design.Knee(col.Card)
		if err != nil {
			return err
		}
		ix, err := core.Build(col.Values, col.Card, base, core.RangeEncoded, nil)
		if err != nil {
			return err
		}
		var raw, zl, wh int64
		type pair struct {
			z []byte
			w *wah.Bitmap
		}
		var all []pair
		for i := 0; i < ix.Components(); i++ {
			for j := 0; j < ix.ComponentBitmaps(i); j++ {
				bm := ix.StoredBitmap(i, j)
				raw += int64(bm.SizeBytes())
				var buf bytes.Buffer
				zw := zlib.NewWriter(&buf)
				if _, err := zw.Write(bm.PayloadBytes()); err != nil {
					return err
				}
				if err := zw.Close(); err != nil {
					return err
				}
				cw := wah.Compress(bm)
				zl += int64(buf.Len())
				wh += int64(cw.SizeBytes())
				all = append(all, pair{z: buf.Bytes(), w: cw})
			}
		}
		// Time AND of adjacent bitmap pairs through each path.
		reps := 1
		if len(all) < 2 {
			return fmt.Errorf("need at least two bitmaps")
		}
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			for i := 0; i+1 < len(all); i++ {
				a, err := inflateToVector(all[i].z, rows)
				if err != nil {
					return err
				}
				b, err := inflateToVector(all[i+1].z, rows)
				if err != nil {
					return err
				}
				a.And(b)
			}
		}
		zlibNS := time.Since(t0).Nanoseconds()
		t0 = time.Now()
		for r := 0; r < reps; r++ {
			for i := 0; i+1 < len(all); i++ {
				wah.And(all[i].w, all[i+1].w)
			}
		}
		wahNS := time.Since(t0).Nanoseconds()
		pairs := int64(len(all) - 1)
		t.row(col.Name, base, raw, zl, wh,
			fmt.Sprintf("%.1f", float64(zlibNS)/float64(pairs)/1000),
			fmt.Sprintf("%.1f", float64(wahNS)/float64(pairs)/1000))
	}
	return t.flush()
}

func inflateToVector(z []byte, rows int) (*bitvec.Vector, error) {
	zr, err := zlib.NewReader(bytes.NewReader(z))
	if err != nil {
		return nil, err
	}
	payload, err := io.ReadAll(zr)
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	var v bitvec.Vector
	if err := v.SetPayload(rows, payload); err != nil {
		return nil, err
	}
	return &v, nil
}
