package experiments

import (
	"fmt"
	"io"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/design"
)

// runAblationInterval places the extension's interval encoding in the
// paper's space-time plane next to the two original encodings: roughly
// half the bitmaps of range encoding per design, at up to twice the scans.
func runAblationInterval(cfg Config, w io.Writer) error {
	cards := []uint64{25, 100}
	if !cfg.Quick {
		cards = append(cards, 1000)
	}
	for _, card := range cards {
		section(w, "Interval encoding ablation, C = %d", card)
		t := newTable(w)
		t.row("encoding", "base", "space", "time")
		for _, enc := range []core.Encoding{core.RangeEncoded, core.EqualityEncoded, core.IntervalEncoded} {
			for _, p := range design.Frontier(card, enc) {
				t.row(enc, p.Base, p.Space, fmt.Sprintf("%.3f", p.Time))
			}
		}
		if err := t.flush(); err != nil {
			return err
		}
		// Head-to-head at the single-component design (the Bit-Sliced /
		// Value-List corner of the space).
		b := core.SingleComponent(card)
		fmt.Fprintf(w, "single-component: range %d bitmaps @ %.3f scans; interval %d bitmaps @ %.3f scans\n",
			cost.SpaceRange(b), cost.TimeRange(b, card),
			cost.SpaceInterval(b), cost.ExactTime(b, core.IntervalEncoded, card))
	}
	return nil
}
