// Package experiments regenerates every table and figure of the paper's
// evaluation as plain-text tables. Each experiment is registered under the
// ID used by cmd/bixbench and bench_test.go; DESIGN.md maps IDs to paper
// artifacts and EXPERIMENTS.md records the measured outcomes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Config scales the experiments. The zero value is not useful; start from
// Default.
type Config struct {
	// Rows is the relation cardinality for data-driven experiments
	// (storage, compression, engine). The paper used the TPC-D scale
	// (6.0M / 1.5M rows); Default scales down to keep a full run fast.
	Rows int
	// Seed drives all synthetic data generation.
	Seed int64
	// Quick further reduces parameter sweeps for use inside testing.B
	// loops and CI.
	Quick bool
	// TempDir hosts on-disk indexes for the storage experiments; empty
	// means os.MkdirTemp.
	TempDir string
	// CSV switches the output format from aligned text to comma-separated
	// rows with "#"-prefixed section headers, ready for plotting tools.
	CSV bool
}

// Default returns the standard configuration.
func Default() Config {
	return Config{Rows: 100000, Seed: 1998}
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Paper string // which table/figure of the paper it regenerates
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"intro", "Section 1", "Bitmap vs RID-list crossover at selectivity 1/32", runIntro},
		{"table1", "Table 1", "Worst-case ops/scans: RangeEval vs RangeEval-Opt", runTable1},
		{"fig8", "Figure 8", "Average scans and ops vs base number (C=100)", runFig8},
		{"fig9", "Figure 9", "Space-time tradeoff: range vs equality encoding", runFig9},
		{"fig10", "Figure 10", "Space-optimal class approximates the full frontier", runFig10},
		{"fig11", "Figure 11", "Components along the space-optimal tradeoff", runFig11},
		{"knee", "Theorem 7.1", "Approximate knee vs definitional knee", runKnee},
		{"fig13", "Figure 13", "Bounds on components of the constrained optimum", runFig13},
		{"fig14", "Figure 14", "Candidate-set size vs space constraint (C=1000)", runFig14},
		{"table2", "Table 2", "Near-optimality of Algorithm TimeOptHeur", runTable2},
		{"table3", "Table 3", "Characteristics of the two data sets", runTable3},
		{"table4", "Table 4", "Compressibility of BS / CS / IS storage schemes", runTable4},
		{"fig16", "Figure 16", "Time and space of BS, cBS, cCS indexes", runFig16},
		{"fig17", "Figure 17", "Effect of bitmap buffering on the tradeoff", runFig17},
		{"ablation-wah", "extension", "WAH vs zlib bitmap compression", runAblationWAH},
		{"ablation-interval", "extension", "Interval encoding vs range and equality", runAblationInterval},
		{"ablation-agg", "extension", "Bit-sliced SUM vs record scan", runAblationAgg},
		{"ablation-cache", "Section 10 live", "LRU bitmap pool vs the buffering model", runAblationCache},
		{"ablation-refine", "Section 8.2", "RefineIndex gain over the FindSmallestN seed", runAblationRefine},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// output format selection: experiments write through csvWriter when the
// Config asks for machine-readable output.
type csvWriter struct{ w io.Writer }

// table is a small helper around tabwriter for aligned output; when the
// destination is a csvWriter it emits comma-separated rows instead.
type table struct {
	tw  *tabwriter.Writer
	csv io.Writer
}

func newTable(w io.Writer) *table {
	if cw, ok := w.(*csvWriter); ok {
		return &table{csv: cw.w}
	}
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...interface{}) {
	if t.csv != nil {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(t.csv, ",")
			}
			s := fmt.Sprint(c)
			if strings.ContainsAny(s, ",\"\n") {
				s = "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
			}
			fmt.Fprint(t.csv, s)
		}
		fmt.Fprintln(t.csv)
		return
	}
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() error {
	if t.csv != nil {
		return nil
	}
	return t.tw.Flush()
}

func section(w io.Writer, format string, args ...interface{}) {
	if _, ok := w.(*csvWriter); ok {
		fmt.Fprintf(w, "# "+format+"\n", args...)
		return
	}
	fmt.Fprintf(w, "\n== "+format+" ==\n", args...)
}

// Writer wraps w according to the config's output format; experiments are
// always invoked with the result of this call.
func (cfg Config) Writer(w io.Writer) io.Writer {
	if cfg.CSV {
		return &csvWriter{w: w}
	}
	return w
}

// Write implements io.Writer so free-form fmt.Fprintf lines in experiments
// pass through unchanged (sections and tables handle their own framing).
func (c *csvWriter) Write(p []byte) (int, error) { return c.w.Write(p) }
