package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"bitmapindex/internal/buffer"
	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/design"
)

// runFig17 reproduces Figure 17: the space-time tradeoff of range-encoded
// indexes under the optimal bitmap buffering policy, for increasing buffer
// sizes m, plus the Theorem 10.2 buffered time-optimal index per m.
func runFig17(cfg Config, w io.Writer) error {
	card := uint64(1000)
	if cfg.Quick {
		card = 100
	}
	ms := []int{0, 2, 4, 8}
	type pt struct {
		base  core.Base
		space int
		time  float64
	}
	for _, m := range ms {
		var all []pt
		design.EnumerateMinimal(card, design.MaxComponents(card), func(b core.Base) {
			a := buffer.Optimal(b, card, m)
			all = append(all, pt{b.Clone(), cost.SpaceRange(b), buffer.Time(b, card, a)})
		})
		sort.Slice(all, func(i, j int) bool {
			if all[i].space != all[j].space {
				return all[i].space < all[j].space
			}
			return all[i].time < all[j].time
		})
		section(w, "Figure 17: buffered tradeoff frontier, C = %d, m = %d", card, m)
		t := newTable(w)
		t.row("base", "space", "time")
		best := math.Inf(1)
		points := 0
		for _, p := range all {
			if p.time < best-1e-9 {
				best = p.time
				t.row(p.base, p.space, fmt.Sprintf("%.3f", p.time))
				points++
				if points >= 14 && !cfg.Quick {
					t.row("...", "", "")
					break
				}
			}
		}
		if err := t.flush(); err != nil {
			return err
		}
		base, a, err := buffer.TimeOptimalIndex(card, m)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Theorem 10.2 time-optimal index for m=%d: %v, assignment %v, time %.3f\n",
			m, base, a, buffer.Time(base, card, a))
	}
	return nil
}
