package experiments

import (
	"fmt"
	"io"
	"time"

	"bitmapindex/internal/core"
	"bitmapindex/internal/data"
	"bitmapindex/internal/design"
)

// runAblationAgg compares SUM over a selection computed two ways: by
// fetching and adding the selected records (a partial scan), and by the
// bit-sliced technique — bitmap ANDs plus population counts on the index
// alone (the Sybase IQ aggregation use the paper cites). The bitmap path
// is selectivity independent; the scan path degrades linearly.
func runAblationAgg(cfg Config, w io.Writer) error {
	rows := cfg.Rows
	if cfg.Quick && rows > 20000 {
		rows = 20000
	}
	col := data.LineitemQuantity(rows, cfg.Seed)
	base, err := design.SpaceOptimalBest(col.Card, 2)
	if err != nil {
		return err
	}
	section(w, "Aggregation ablation: SUM(quantity) over a selection, N = %d, index %v", rows, base)
	t := newTable(w)
	t.row("selectivity", "sum", "scan_us", "bitsliced_us", "speedup")
	for _, enc := range []core.Encoding{core.EqualityEncoded, core.RangeEncoded} {
		ix, err := core.Build(col.Values, col.Card, base, enc, nil)
		if err != nil {
			return err
		}
		t.row("-- encoding "+enc.String(), "", "", "", "")
		for _, cut := range []uint64{5, 15, 25, 40, 49} {
			sel := ix.Eval(core.Le, cut, nil)
			// Scan path: iterate the selected rows, add their values.
			reps := 5
			t0 := time.Now()
			var scanSum uint64
			for rep := 0; rep < reps; rep++ {
				scanSum = 0
				sel.Ones(func(r int) bool {
					scanSum += col.Values[r]
					return true
				})
			}
			scanNS := time.Since(t0).Nanoseconds() / int64(reps)
			// Bit-sliced path.
			t0 = time.Now()
			var bsSum uint64
			for rep := 0; rep < reps; rep++ {
				var err error
				bsSum, _, err = ix.SumSelected(sel)
				if err != nil {
					return err
				}
			}
			bsNS := time.Since(t0).Nanoseconds() / int64(reps)
			if bsSum != scanSum {
				return fmt.Errorf("sums disagree: %d vs %d", bsSum, scanSum)
			}
			t.row(fmt.Sprintf("%.2f", float64(sel.Count())/float64(rows)),
				bsSum,
				fmt.Sprintf("%.1f", float64(scanNS)/1000),
				fmt.Sprintf("%.1f", float64(bsNS)/1000),
				fmt.Sprintf("%.1fx", float64(scanNS)/float64(bsNS)))
		}
	}
	return t.flush()
}
