package design

import (
	"errors"
	"math"
	"testing"

	"bitmapindex/internal/cost"
)

func TestAllocateBudgetBasics(t *testing.T) {
	cards := []uint64{50, 2406, 100}
	alloc, err := AllocateBudget(cards, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Bases) != 3 {
		t.Fatalf("got %d bases", len(alloc.Bases))
	}
	if alloc.TotalSpace() > 120 {
		t.Fatalf("budget exceeded: %d", alloc.TotalSpace())
	}
	for i, b := range alloc.Bases {
		if !b.Covers(cards[i]) {
			t.Fatalf("attribute %d: base %v does not cover %d", i, b, cards[i])
		}
		if alloc.Spaces[i] != cost.SpaceRange(b) {
			t.Fatalf("attribute %d: space mismatch", i)
		}
		if math.Abs(alloc.Times[i]-cost.TimeRange(b, cards[i])) > 1e-9 {
			t.Fatalf("attribute %d: time mismatch", i)
		}
	}
	// Every attribute must do at least as well as its smallest (base-2)
	// design: the allocator never wastes the per-attribute minimum.
	for i, c := range cards {
		b2, err := SpaceOptimal(c, MaxComponents(c))
		if err != nil {
			t.Fatal(err)
		}
		if alloc.Times[i] > cost.TimeRange(b2, c)+1e-9 {
			t.Errorf("attribute %d slower than its base-2 index", i)
		}
	}
}

// bruteAllocate exhaustively tries all per-attribute frontier choices.
func bruteAllocate(cards []uint64, m int) float64 {
	fronts := make([][]Point, len(cards))
	for i, c := range cards {
		fronts[i] = Frontier(c, 1) // core.RangeEncoded == 1
	}
	best := math.Inf(1)
	var rec func(k, space int, time float64)
	rec = func(k, space int, time float64) {
		if space > m {
			return
		}
		if k == len(cards) {
			if time < best {
				best = time
			}
			return
		}
		for _, p := range fronts[k] {
			rec(k+1, space+p.Space, time+p.Time)
		}
	}
	rec(0, 0, 0)
	return best
}

func TestAllocateBudgetMatchesBruteForce(t *testing.T) {
	cases := []struct {
		cards []uint64
		m     int
	}{
		{[]uint64{10, 20}, 12},
		{[]uint64{10, 20}, 25},
		{[]uint64{25, 25, 25}, 30},
		{[]uint64{50, 100}, 40},
		{[]uint64{16, 64, 256}, 50},
	}
	for _, c := range cases {
		alloc, err := AllocateBudget(c.cards, c.m)
		if err != nil {
			t.Fatalf("%v M=%d: %v", c.cards, c.m, err)
		}
		want := bruteAllocate(c.cards, c.m)
		if math.Abs(alloc.TotalTime()-want) > 1e-9 {
			t.Errorf("%v M=%d: DP found %.4f, brute force %.4f (alloc %v)",
				c.cards, c.m, alloc.TotalTime(), want, alloc.Bases)
		}
	}
}

func TestGreedyAllocateNearOptimal(t *testing.T) {
	cases := []struct {
		cards []uint64
		m     int
	}{
		{[]uint64{50, 2406}, 60},
		{[]uint64{50, 2406, 100}, 120},
		{[]uint64{10, 20, 30, 40}, 45},
	}
	for _, c := range cases {
		g, err := GreedyAllocate(c.cards, c.m)
		if err != nil {
			t.Fatal(err)
		}
		if g.TotalSpace() > c.m {
			t.Fatalf("%v: greedy exceeded budget", c.cards)
		}
		opt, err := AllocateBudget(c.cards, c.m)
		if err != nil {
			t.Fatal(err)
		}
		if g.TotalTime() < opt.TotalTime()-1e-9 {
			t.Fatalf("greedy beat the optimum?! %.4f < %.4f", g.TotalTime(), opt.TotalTime())
		}
		if g.TotalTime() > opt.TotalTime()*1.15+1e-9 {
			t.Errorf("%v M=%d: greedy %.4f more than 15%% off optimum %.4f",
				c.cards, c.m, g.TotalTime(), opt.TotalTime())
		}
	}
}

func TestAllocateBudgetMonotone(t *testing.T) {
	cards := []uint64{50, 100}
	prev := math.Inf(1)
	for m := 13; m <= 150; m += 7 {
		alloc, err := AllocateBudget(cards, m)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.TotalTime() > prev+1e-9 {
			t.Fatalf("M=%d: more budget made the workload slower (%.4f > %.4f)", m, alloc.TotalTime(), prev)
		}
		prev = alloc.TotalTime()
	}
}

func TestAllocateErrors(t *testing.T) {
	if _, err := AllocateBudget(nil, 10); err == nil {
		t.Error("empty workload must fail")
	}
	if _, err := AllocateBudget([]uint64{1}, 10); err == nil {
		t.Error("C=1 must fail")
	}
	if _, err := AllocateBudget([]uint64{1000, 1000}, 10); !errors.Is(err, ErrInfeasible) {
		t.Errorf("tiny budget: err = %v", err)
	}
	if _, err := GreedyAllocate(nil, 10); err == nil {
		t.Error("greedy empty workload must fail")
	}
	if _, err := GreedyAllocate([]uint64{1}, 10); err == nil {
		t.Error("greedy C=1 must fail")
	}
	if _, err := GreedyAllocate([]uint64{1000, 1000}, 10); !errors.Is(err, ErrInfeasible) {
		t.Error("greedy tiny budget must be infeasible")
	}
}
