// Package design implements the paper's physical-design results: the
// space-optimal and time-optimal indexes (Theorem 6.1), the knee of the
// space-time tradeoff (Section 7), and the time-optimal index under a disk
// space constraint (Section 8), both the exhaustive Algorithm TimeOptAlg
// and the near-optimal heuristic Algorithm TimeOptHeur (FindSmallestN +
// RefineIndex, Theorem 8.1).
//
// All results in this package are for range-encoded indexes, which
// Section 5 shows dominate equality-encoded ones for the selection query
// mix; the time metric is cost.TimeRange. Base sequences are kept in the
// canonical best arrangement: non-increasing from component 1, so the
// largest base number sits at b_1 where it minimizes expected scans.
package design

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
)

// ErrInfeasible is returned when no well-defined index satisfies the given
// space constraint; the minimum possible space is ceil(log2 C) bitmaps
// (the base-2 index).
var ErrInfeasible = errors.New("design: space constraint below the base-2 index size")

// Point is one index design with its space and time coordinates.
type Point struct {
	Base  core.Base
	Space int     // stored bitmaps
	Time  float64 // expected scans per query (cost.TimeRange)
}

// MaxComponents returns the largest useful number of components for
// cardinality card: ceil(log2 C), at which every base number is 2.
func MaxComponents(card uint64) int { return core.Log2Ceil(card) }

func checkNC(card uint64, n int) error {
	if card < 2 {
		return fmt.Errorf("design: cardinality must be >= 2, got %d", card)
	}
	if n < 1 || n > MaxComponents(card) {
		return fmt.Errorf("design: n = %d out of range [1, %d] for C = %d", n, MaxComponents(card), card)
	}
	return nil
}

// ceilRoot returns ceil(card^(1/n)) computed with integer arithmetic.
func ceilRoot(card uint64, n int) uint64 {
	if n == 1 {
		return card
	}
	b := uint64(math.Ceil(math.Pow(float64(card), 1/float64(n))))
	if b < 2 {
		b = 2
	}
	// Float error can be off by one in either direction; fix up exactly.
	for b > 2 && powAtLeast(b-1, n, card) {
		b--
	}
	for !powAtLeast(b, n, card) {
		b++
	}
	return b
}

// powAtLeast reports whether b^n >= card without overflowing.
func powAtLeast(b uint64, n int, card uint64) bool {
	p := uint64(1)
	for i := 0; i < n; i++ {
		if b != 0 && p > card/b+1 {
			return true
		}
		p *= b
		if p >= card {
			return true
		}
	}
	return p >= card
}

// SpaceOptimal returns the n-component space-optimal base of Theorem
// 6.1(1): with b = ceil(C^(1/n)) and r the smallest positive integer such
// that b^r * (b-1)^(n-r) >= C, the base has r components of b and n-r of
// b-1, giving n(b-2)+r stored bitmaps. When b = 2 the n-r low components
// would be base 1, so r must equal n (requiring n = ceil(log2 C) exactly
// for such n); the function then returns the all-2 base.
func SpaceOptimal(card uint64, n int) (core.Base, error) {
	if err := checkNC(card, n); err != nil {
		return nil, err
	}
	b := ceilRoot(card, n)
	if b == 2 {
		// (b-1) components would be base 1; only the uniform base-2 index
		// is well-defined, and it covers card because n >= ceil(log2 C)
		// is impossible here beyond equality.
		base := core.Uniform(2, n)
		if !base.Covers(card) {
			return nil, fmt.Errorf("design: no %d-component space-optimal base for C = %d", n, card)
		}
		return base, nil
	}
	r := 1
	for ; r <= n; r++ {
		if mixedPowAtLeast(b, r, b-1, n-r, card) {
			break
		}
	}
	if r > n {
		return nil, fmt.Errorf("design: internal: r not found for C=%d n=%d", card, n)
	}
	base := make(core.Base, n)
	for i := 0; i < r; i++ {
		base[i] = b
	}
	for i := r; i < n; i++ {
		base[i] = b - 1
	}
	return base, nil
}

// mixedPowAtLeast reports whether a^ra * b^rb >= card.
func mixedPowAtLeast(a uint64, ra int, b uint64, rb int, card uint64) bool {
	p := uint64(1)
	mul := func(f uint64) bool {
		if f != 0 && p > math.MaxUint64/f {
			return true
		}
		p *= f
		return p >= card
	}
	for i := 0; i < ra; i++ {
		if mul(a) {
			return true
		}
	}
	for i := 0; i < rb; i++ {
		if mul(b) {
			return true
		}
	}
	return p >= card
}

// MinSpace returns the number of stored bitmaps of the n-component
// space-optimal index.
func MinSpace(card uint64, n int) (int, error) {
	base, err := SpaceOptimal(card, n)
	if err != nil {
		return 0, err
	}
	return cost.SpaceRange(base), nil
}

// TimeOptimal returns the n-component time-optimal base of Theorem 6.1(3):
// <2, ..., 2, ceil(C / 2^(n-1))> in the paper's big-endian notation, i.e.
// one large component at position 1 and base-2 components elsewhere.
func TimeOptimal(card uint64, n int) (core.Base, error) {
	if err := checkNC(card, n); err != nil {
		return nil, err
	}
	base := make(core.Base, n)
	rest := uint64(1) << uint(n-1)
	b1 := (card + rest - 1) / rest
	if b1 < 2 {
		b1 = 2
	}
	base[0] = b1
	for i := 1; i < n; i++ {
		base[i] = 2
	}
	return base, nil
}

// SpaceOptimalBest returns the most time-efficient base among all
// n-component bases that attain the minimal space (the representative the
// paper plots in Figures 10 and 11, since the n-component space-optimal
// index is generally not unique).
func SpaceOptimalBest(card uint64, n int) (core.Base, error) {
	s, err := MinSpace(card, n)
	if err != nil {
		return nil, err
	}
	var best core.Base
	bestTime := math.Inf(1)
	// Enumerate multisets with sum of (b_i - 1) exactly s and product >= C.
	enumerateExactSpace(card, n, s, func(ms []uint64) {
		b := arrange(ms)
		if t := cost.TimeRange(b, card); t < bestTime {
			bestTime = t
			best = b.Clone()
		}
	})
	if best == nil {
		return nil, fmt.Errorf("design: internal: no base with space %d for C=%d n=%d", s, card, n)
	}
	return best, nil
}

// arrange converts a multiset of base numbers into the canonical best
// arrangement: non-increasing, so the largest base is b_1 (minimizing the
// (2/3)(1 - 1/b_1) term of the time formula).
func arrange(ms []uint64) core.Base {
	b := make(core.Base, len(ms))
	copy(b, ms)
	sort.Slice(b, func(i, j int) bool { return b[i] > b[j] })
	return b
}

// enumerateExactSpace visits every non-decreasing multiset of k base
// numbers (each >= 2) with sum_i (b_i - 1) == space and product >= card.
func enumerateExactSpace(card uint64, k, space int, visit func([]uint64)) {
	ms := make([]uint64, 0, k)
	var rec func(minB uint64, left int, prod uint64)
	rec = func(minB uint64, left int, prod uint64) {
		remaining := k - len(ms)
		if remaining == 0 {
			if left == 0 && prodAtLeast(prod, 1, card) {
				visit(ms)
			}
			return
		}
		// Each remaining component consumes at least minB-1 from the space
		// budget; the last consumes the rest.
		if remaining == 1 {
			b := uint64(left + 1)
			if b >= minB && b >= 2 {
				ms = append(ms, b)
				if prodAtLeast(prod, b, card) {
					visit(ms)
				}
				ms = ms[:len(ms)-1]
			}
			return
		}
		for b := minB; int(b-1)*remaining <= left; b++ {
			ms = append(ms, b)
			rec(b, left-int(b-1), satMul(prod, b))
			ms = ms[:len(ms)-1]
		}
	}
	rec(2, space, 1)
}

func satMul(a, b uint64) uint64 {
	if b != 0 && a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}

func prodAtLeast(prod, b, card uint64) bool { return satMul(prod, b) >= card }

// EnumerateMinimal visits every decrement-minimal multiset of base numbers
// covering card with between 1 and maxN components, in the canonical
// arrangement. A multiset is decrement-minimal when no single base number
// can be reduced by one while still covering card; only such bases can lie
// on the space-time tradeoff frontier (reducing a base number reduces both
// space and time).
func EnumerateMinimal(card uint64, maxN int, visit func(core.Base)) {
	if card < 2 {
		return
	}
	if maxN > MaxComponents(card) {
		maxN = MaxComponents(card)
	}
	ms := make([]uint64, 0, maxN)
	var rec func(minB uint64, prod uint64)
	rec = func(minB uint64, prod uint64) {
		// Close the multiset with one exact final component.
		need := (card + prod - 1) / prod // ceil(card / prod)
		if need >= minB && need >= 2 {
			ms = append(ms, need)
			if isMinimal(ms, card) {
				visit(arrange(ms))
			}
			ms = ms[:len(ms)-1]
		}
		if len(ms)+1 >= maxN {
			return
		}
		// Or keep the product strictly below card and recurse.
		for b := minB; satMul(prod, b) < card; b++ {
			ms = append(ms, b)
			rec(b, prod*b)
			ms = ms[:len(ms)-1]
		}
	}
	rec(2, 1)
}

func isMinimal(ms []uint64, card uint64) bool {
	prod := uint64(1)
	for _, b := range ms {
		prod = satMul(prod, b)
	}
	for _, b := range ms {
		if b >= 3 && satMul(prod/b, b-1) >= card {
			return false
		}
	}
	return true
}

// Frontier returns the Pareto-optimal set S of index designs for the given
// encoding: no other design is at least as good in both space and time and
// better in one. Points are sorted by increasing space (hence decreasing
// time). Time for equality encoding is computed by exact enumeration.
func Frontier(card uint64, enc core.Encoding) []Point {
	var all []Point
	EnumerateMinimal(card, MaxComponents(card), func(b core.Base) {
		p := Point{Base: b.Clone(), Space: cost.Space(b, enc)}
		if enc == core.RangeEncoded {
			p.Time = cost.TimeRange(b, card)
		} else {
			p.Time = cost.ExactTime(b, enc, card)
		}
		all = append(all, p)
	})
	return paretoMin(all)
}

// paretoMin keeps the points minimal in (Space, Time), sorted by Space.
func paretoMin(all []Point) []Point {
	sort.Slice(all, func(i, j int) bool {
		if all[i].Space != all[j].Space {
			return all[i].Space < all[j].Space
		}
		return all[i].Time < all[j].Time
	})
	var out []Point
	best := math.Inf(1)
	for _, p := range all {
		if p.Time < best-1e-12 {
			out = append(out, p)
			best = p.Time
		}
	}
	return out
}

// Knee returns the paper's approximate characterization of the knee of the
// space-time tradeoff (Section 7): the most time-efficient 2-component
// space-optimal index (Theorem 7.1). For cardinalities of at most 4 the
// tradeoff has a single point and the 1-component index is returned.
func Knee(card uint64) (core.Base, error) {
	if card < 2 {
		return nil, fmt.Errorf("design: cardinality must be >= 2, got %d", card)
	}
	if MaxComponents(card) < 2 {
		return core.SingleComponent(card), nil
	}
	return SpaceOptimalBest(card, 2)
}

// KneeByDefinition computes the knee from its definition: on the optimal
// frontier I_1..I_p, with normalized gradients LG_j and RG_j (the factor
// F = Space(I_p)/Time(I_1) rescales both axes to comparable units), the
// knee is the point with LG_j > 1 and RG_j < 1 maximizing LG_j / RG_j.
func KneeByDefinition(card uint64) (Point, error) {
	front := Frontier(card, core.RangeEncoded)
	if len(front) == 0 {
		return Point{}, fmt.Errorf("design: empty frontier for C = %d", card)
	}
	if len(front) < 3 {
		return front[0], nil
	}
	f := float64(front[len(front)-1].Space) / front[0].Time
	bestRatio := math.Inf(-1)
	var knee Point
	found := false
	for j := 1; j < len(front)-1; j++ {
		lg := f * (front[j-1].Time - front[j].Time) / float64(front[j].Space-front[j-1].Space)
		rg := f * (front[j].Time - front[j+1].Time) / float64(front[j+1].Space-front[j].Space)
		if lg > 1 && rg < 1 && rg > 0 {
			if ratio := lg / rg; ratio > bestRatio {
				bestRatio = ratio
				knee = front[j]
				found = true
			}
		}
	}
	if !found {
		// Degenerate frontiers (tiny C) have no interior knee; fall back to
		// the point closest to the normalized origin.
		bestD := math.Inf(1)
		for _, p := range front {
			d := float64(p.Space)/float64(front[len(front)-1].Space) + p.Time/front[0].Time
			if d < bestD {
				bestD = d
				knee = p
			}
		}
	}
	return knee, nil
}
