package design

import (
	"fmt"
	"math"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
)

// AttrDemand is one attribute of an observed workload: its cardinality
// plus the measured query demand the allocator should weight it by.
type AttrDemand struct {
	// Card is the attribute cardinality (>= 2).
	Card uint64
	// Weight is the attribute's relative query frequency, on any
	// non-negative scale (raw query counts work). All-equal weights
	// reproduce AllocateBudget exactly.
	Weight float64
	// RangeFrac is the fraction of the attribute's one-sided evaluations
	// that are range-class (<, <=, >, >=) rather than equality-class
	// (=, !=). Values outside [0, 1] select the paper's default 2/3 mix.
	RangeFrac float64
}

// UniformDemands converts a plain cardinality list into equal-weight,
// default-mix demands — the workload AllocateBudget assumes.
func UniformDemands(cards []uint64) []AttrDemand {
	out := make([]AttrDemand, len(cards))
	for i, c := range cards {
		out[i] = AttrDemand{Card: c, Weight: 1, RangeFrac: -1}
	}
	return out
}

// AllocateBudgetWeighted divides a total disk budget of M stored bitmaps
// across one range-encoded index per attribute so that the expected scans
// per query under the *observed* workload is minimal: attribute i's
// frontier times are computed at its measured operator mix
// (cost.TimeRangeMix) and weighted by its measured query frequency. It
// generalizes AllocateBudget, which assumes every attribute is queried
// equally often with the paper's fixed 4:2 operator mix; with all-equal
// weights and default mixes the two return identical allocations.
//
// The returned Allocation's Times are per-query expected scans of each
// attribute's own queries (unweighted); use WeightedTime to price an
// allocation under a frequency vector.
func AllocateBudgetWeighted(demands []AttrDemand, m int) (Allocation, error) {
	if len(demands) == 0 {
		return Allocation{}, fmt.Errorf("design: no attributes")
	}
	minTotal := 0
	uniform := true
	for _, d := range demands {
		if d.Card < 2 {
			return Allocation{}, fmt.Errorf("design: cardinality must be >= 2, got %d", d.Card)
		}
		if d.Weight < 0 || math.IsNaN(d.Weight) || math.IsInf(d.Weight, 0) {
			return Allocation{}, fmt.Errorf("design: weight must be finite and >= 0, got %v", d.Weight)
		}
		if d.Weight != demands[0].Weight || mixFrac(d) != mixFrac(demands[0]) {
			uniform = false
		}
		minTotal += MaxComponents(d.Card)
	}
	if m < minTotal {
		return Allocation{}, fmt.Errorf("%w: M = %d < %d (sum of base-2 index sizes)", ErrInfeasible, m, minTotal)
	}
	fronts := make([][]Point, len(demands))
	for i, d := range demands {
		f := mixFrontier(d.Card, mixFrac(d))
		for len(f) > 0 && f[len(f)-1].Space > m {
			f = f[:len(f)-1]
		}
		if len(f) == 0 {
			return Allocation{}, fmt.Errorf("design: internal: empty clipped frontier for C=%d", d.Card)
		}
		fronts[i] = f
	}
	// All-equal weights scale every candidate total by the same constant,
	// so drop them entirely: the DP then runs the exact arithmetic of
	// AllocateBudget (the uniform-identity property the tests pin down).
	var weights []float64
	if !uniform {
		weights = make([]float64, len(demands))
		for i, d := range demands {
			weights[i] = d.Weight
		}
	}
	return allocateDP(fronts, weights, m)
}

// mixFrac resolves a demand's operator mix, defaulting out-of-range
// fractions.
func mixFrac(d AttrDemand) float64 {
	if !(d.RangeFrac >= 0 && d.RangeFrac <= 1) {
		return cost.DefaultRangeFraction
	}
	return d.RangeFrac
}

// mixFrontier is Frontier for a range-encoded index priced at an observed
// operator mix. At the default mix the times (and hence the frontier) are
// identical to Frontier(card, core.RangeEncoded).
func mixFrontier(card uint64, rangeFrac float64) []Point {
	var all []Point
	EnumerateMinimal(card, MaxComponents(card), func(b core.Base) {
		all = append(all, Point{
			Base:  b.Clone(),
			Space: cost.SpaceRange(b),
			Time:  cost.TimeRangeMix(b, card, rangeFrac),
		})
	})
	return paretoMin(all)
}

// allocateDP is the shared budget-division dynamic program over
// per-attribute frontiers: best[j] is the minimal total (weighted) time
// within budget j after the first k attributes. nil weights mean
// unweighted accumulation — not a vector of ones, so the uniform path
// performs the same float operations AllocateBudget always has.
func allocateDP(fronts [][]Point, weights []float64, m int) (Allocation, error) {
	const inf = math.MaxFloat64
	best := make([]float64, m+1)
	choice := make([][]int, len(fronts)) // choice[k][j] = index into fronts[k]
	prev := append([]float64(nil), best...)
	for k := range fronts {
		choice[k] = make([]int, m+1)
		for j := range best {
			best[j] = inf
			choice[k][j] = -1
		}
		for j := 0; j <= m; j++ {
			if prev[j] == inf {
				continue
			}
			for pi, p := range fronts[k] {
				nj := j + p.Space
				if nj > m {
					break
				}
				t := p.Time
				if weights != nil {
					t = weights[k] * t
				}
				if t = prev[j] + t; t < best[nj] {
					best[nj] = t
					choice[k][nj] = pi
				}
			}
		}
		// best[j] should be monotone non-increasing in j for backtracking
		// convenience: propagate prefix minima while keeping choices.
		for j := 1; j <= m; j++ {
			if best[j-1] < best[j] {
				best[j] = best[j-1]
				choice[k][j] = -2 // marker: take budget j-1's solution
			}
		}
		copy(prev, best)
	}
	alloc := Allocation{
		Bases:  make([]core.Base, len(fronts)),
		Spaces: make([]int, len(fronts)),
		Times:  make([]float64, len(fronts)),
	}
	j := m
	for k := len(fronts) - 1; k >= 0; k-- {
		for choice[k][j] == -2 {
			j--
		}
		pi := choice[k][j]
		if pi < 0 {
			return Allocation{}, fmt.Errorf("design: internal: broken DP backtrack")
		}
		p := fronts[k][pi]
		alloc.Bases[k] = p.Base.Clone()
		alloc.Spaces[k] = p.Space
		alloc.Times[k] = p.Time
		j -= p.Space
	}
	return alloc, nil
}

// WeightedTime prices the allocation under a query-frequency vector: the
// expected scans per query when attribute i receives a fraction
// weights[i]/sum(weights) of the workload. Zero total weight falls back
// to the uniform average.
func (a Allocation) WeightedTime(weights []float64) float64 {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		if len(a.Times) == 0 {
			return 0
		}
		return a.TotalTime() / float64(len(a.Times))
	}
	var t float64
	for i, w := range weights {
		if i < len(a.Times) {
			t += w / sum * a.Times[i]
		}
	}
	return t
}
