package design

import (
	"fmt"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
)

// EncodedPoint is one (base, encoding) design with its coordinates.
type EncodedPoint struct {
	Base     core.Base
	Encoding core.Encoding
	Space    int
	Time     float64
}

// FrontierAllEncodings returns the Pareto frontier over the full design
// space — every minimal base under each of the three encodings — so a
// designer can pick encoding and decomposition together. Range and
// equality encodings use their closed-form/enumerated models; interval
// encoding is measured on instrumented one-row indexes, so keep card
// moderate (up to a few thousand) for interactive use.
func FrontierAllEncodings(card uint64) []EncodedPoint {
	var all []EncodedPoint
	for _, enc := range []core.Encoding{core.RangeEncoded, core.EqualityEncoded, core.IntervalEncoded} {
		for _, p := range Frontier(card, enc) {
			all = append(all, EncodedPoint{Base: p.Base, Encoding: enc, Space: p.Space, Time: p.Time})
		}
	}
	return paretoMinEncoded(all)
}

func paretoMinEncoded(all []EncodedPoint) []EncodedPoint {
	// Sort by space then time; tie-break deterministically on encoding so
	// output is stable across runs.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && lessEncoded(all[j], all[j-1]); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	var out []EncodedPoint
	best := -1.0
	for _, p := range all {
		if best < 0 || p.Time < best-1e-12 {
			out = append(out, p)
			best = p.Time
		}
	}
	return out
}

func lessEncoded(a, b EncodedPoint) bool {
	if a.Space != b.Space {
		return a.Space < b.Space
	}
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Encoding < b.Encoding
}

// BestDesignUnderSpace returns the most time-efficient (base, encoding)
// pair storing at most m bitmaps, searched over the combined frontier.
func BestDesignUnderSpace(card uint64, m int) (core.Base, core.Encoding, error) {
	front := FrontierAllEncodings(card)
	var best *EncodedPoint
	for i := range front {
		if front[i].Space > m {
			break
		}
		best = &front[i]
	}
	if best == nil {
		return nil, 0, fmt.Errorf("%w: M = %d (combined frontier starts at %d bitmaps)",
			ErrInfeasible, m, front[0].Space)
	}
	return best.Base.Clone(), best.Encoding, nil
}

// EncodingComparison returns the three encodings' coordinates at one base,
// for advisor displays.
func EncodingComparison(base core.Base, card uint64) []EncodedPoint {
	out := make([]EncodedPoint, 0, 3)
	for _, enc := range []core.Encoding{core.RangeEncoded, core.EqualityEncoded, core.IntervalEncoded} {
		out = append(out, EncodedPoint{
			Base:     base.Clone(),
			Encoding: enc,
			Space:    cost.Space(base, enc),
			Time:     cost.ExactTime(base, enc, card),
		})
	}
	return out
}
