package design

import (
	"errors"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
)

func TestFrontierAllEncodingsPareto(t *testing.T) {
	for _, card := range []uint64{25, 100} {
		front := FrontierAllEncodings(card)
		if len(front) < 3 {
			t.Fatalf("C=%d: combined frontier too small (%d)", card, len(front))
		}
		encSeen := map[core.Encoding]bool{}
		for i, p := range front {
			if !p.Base.Covers(card) {
				t.Fatalf("C=%d: %v does not cover", card, p.Base)
			}
			if p.Space != cost.Space(p.Base, p.Encoding) {
				t.Fatalf("C=%d: space mismatch at %v/%v", card, p.Base, p.Encoding)
			}
			if i > 0 {
				if p.Space <= front[i-1].Space || p.Time >= front[i-1].Time {
					t.Fatalf("C=%d: frontier not strictly improving at %d", card, i)
				}
			}
			encSeen[p.Encoding] = true
		}
		// The combined frontier must dominate each per-encoding frontier.
		for _, enc := range []core.Encoding{core.RangeEncoded, core.EqualityEncoded, core.IntervalEncoded} {
			for _, q := range Frontier(card, enc) {
				dominated := false
				for _, p := range front {
					if p.Space <= q.Space && p.Time <= q.Time+1e-9 {
						dominated = true
						break
					}
				}
				if !dominated {
					t.Fatalf("C=%d: %v/%v (s=%d t=%.3f) not dominated by combined frontier",
						card, q.Base, enc, q.Space, q.Time)
				}
			}
		}
		// Interval encoding must contribute somewhere: it owns the
		// mid-space region for typical C.
		if !encSeen[core.IntervalEncoded] {
			t.Errorf("C=%d: interval encoding absent from combined frontier", card)
		}
		if !encSeen[core.RangeEncoded] {
			t.Errorf("C=%d: range encoding absent from combined frontier", card)
		}
	}
}

func TestBestDesignUnderSpace(t *testing.T) {
	base, enc, err := BestDesignUnderSpace(100, 15)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Space(base, enc) > 15 {
		t.Fatalf("budget violated: %v/%v", base, enc)
	}
	// With a generous budget the time-optimal single-component
	// range-encoded index wins.
	base, enc, err = BestDesignUnderSpace(100, 99)
	if err != nil {
		t.Fatal(err)
	}
	if enc != core.RangeEncoded || base.N() != 1 {
		t.Fatalf("unconstrained best = %v/%v, want single-component range", base, enc)
	}
	if _, _, err := BestDesignUnderSpace(100, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("tiny budget: %v", err)
	}
}

func TestEncodingComparison(t *testing.T) {
	pts := EncodingComparison(core.Base{10, 10}, 100)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	byEnc := map[core.Encoding]EncodedPoint{}
	for _, p := range pts {
		byEnc[p.Encoding] = p
	}
	if byEnc[core.IntervalEncoded].Space >= byEnc[core.RangeEncoded].Space {
		t.Error("interval should store fewer bitmaps than range at base <10,10>")
	}
	if byEnc[core.RangeEncoded].Time >= byEnc[core.EqualityEncoded].Time {
		t.Error("range should be faster than equality at base <10,10>")
	}
}
