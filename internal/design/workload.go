package design

import (
	"fmt"

	"bitmapindex/internal/core"
)

// Allocation is the result of dividing a disk budget across the bitmap
// indexes of a multi-attribute workload.
type Allocation struct {
	// Bases[i] is the chosen design for attribute i.
	Bases []core.Base
	// Spaces[i] is its stored-bitmap count; Times[i] its expected scans.
	Spaces []int
	Times  []float64
}

// TotalSpace returns the summed stored bitmaps.
func (a Allocation) TotalSpace() int {
	t := 0
	for _, s := range a.Spaces {
		t += s
	}
	return t
}

// TotalTime returns the summed expected scans per query, the workload cost
// under the model that each attribute is queried equally often.
func (a Allocation) TotalTime() float64 {
	t := 0.0
	for _, s := range a.Times {
		t += s
	}
	return t
}

// AllocateBudget divides a total disk budget of M stored bitmaps across
// one range-encoded index per attribute so that the summed expected scans
// per query is minimal, assuming each attribute is queried equally often.
// It is the paper's physical-design question lifted from one attribute to
// a workload: per attribute the optimal frontier gives the best achievable
// time at every space, and a dynamic program picks one point per frontier
// under the shared budget.
//
// The budget must cover at least the base-2 index of every attribute
// (sum of ceil(log2 C_i)); otherwise ErrInfeasible is returned.
func AllocateBudget(cards []uint64, m int) (Allocation, error) {
	if len(cards) == 0 {
		return Allocation{}, fmt.Errorf("design: no attributes")
	}
	minTotal := 0
	for _, c := range cards {
		if c < 2 {
			return Allocation{}, fmt.Errorf("design: cardinality must be >= 2, got %d", c)
		}
		minTotal += MaxComponents(c)
	}
	if m < minTotal {
		return Allocation{}, fmt.Errorf("%w: M = %d < %d (sum of base-2 index sizes)", ErrInfeasible, m, minTotal)
	}
	// Per attribute: frontier of (space, best time at that space), as a
	// step function over 0..m, then the shared budget-division DP
	// (allocateDP, unweighted).
	fronts := make([][]Point, len(cards))
	for i, c := range cards {
		f := Frontier(c, core.RangeEncoded)
		// Clip to the budget; at least the first point fits by the check
		// above.
		for len(f) > 0 && f[len(f)-1].Space > m {
			f = f[:len(f)-1]
		}
		if len(f) == 0 {
			return Allocation{}, fmt.Errorf("design: internal: empty clipped frontier for C=%d", c)
		}
		fronts[i] = f
	}
	return allocateDP(fronts, nil, m)
}

// GreedyAllocate is the simple alternative: start every attribute at its
// base-2 index and repeatedly spend budget on the attribute frontier step
// with the best time-saved-per-bitmap ratio. It is near-optimal in
// practice and O((m + sum |frontier|) log n); the test suite compares it
// against AllocateBudget.
func GreedyAllocate(cards []uint64, m int) (Allocation, error) {
	if len(cards) == 0 {
		return Allocation{}, fmt.Errorf("design: no attributes")
	}
	type state struct {
		front []Point
		idx   int
	}
	states := make([]state, len(cards))
	used := 0
	for i, c := range cards {
		if c < 2 {
			return Allocation{}, fmt.Errorf("design: cardinality must be >= 2, got %d", c)
		}
		states[i].front = Frontier(c, core.RangeEncoded)
		used += states[i].front[0].Space
	}
	if used > m {
		return Allocation{}, fmt.Errorf("%w: M = %d < %d (sum of base-2 index sizes)", ErrInfeasible, m, used)
	}
	for {
		bestI, bestRatio := -1, 0.0
		for i := range states {
			s := &states[i]
			if s.idx+1 >= len(s.front) {
				continue
			}
			cur, nxt := s.front[s.idx], s.front[s.idx+1]
			extra := nxt.Space - cur.Space
			if used+extra > m {
				continue
			}
			if ratio := (cur.Time - nxt.Time) / float64(extra); ratio > bestRatio {
				bestRatio = ratio
				bestI = i
			}
		}
		if bestI < 0 {
			break
		}
		s := &states[bestI]
		used += s.front[s.idx+1].Space - s.front[s.idx].Space
		s.idx++
	}
	alloc := Allocation{
		Bases:  make([]core.Base, len(cards)),
		Spaces: make([]int, len(cards)),
		Times:  make([]float64, len(cards)),
	}
	for i := range states {
		p := states[i].front[states[i].idx]
		alloc.Bases[i] = p.Base.Clone()
		alloc.Spaces[i] = p.Space
		alloc.Times[i] = p.Time
	}
	return alloc, nil
}
