package design

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
)

// bruteMinSpace finds the true minimal space of an n-component covering
// base by enumeration.
func bruteMinSpace(card uint64, n int) int {
	best := math.MaxInt
	enumerateMinimalK(card, n, math.MaxInt32, func(b core.Base) {
		if s := cost.SpaceRange(b); s < best {
			best = s
		}
	})
	return best
}

// bruteBestTime finds the minimal time of an n-component covering base.
func bruteBestTime(card uint64, n int) float64 {
	best := math.Inf(1)
	enumerateMinimalK(card, n, math.MaxInt32, func(b core.Base) {
		if t := cost.TimeRange(b, card); t < best {
			best = t
		}
	})
	return best
}

func TestSpaceOptimalMatchesBruteForce(t *testing.T) {
	for _, card := range []uint64{2, 5, 9, 10, 25, 100, 1000} {
		for n := 1; n <= MaxComponents(card); n++ {
			base, err := SpaceOptimal(card, n)
			if err != nil {
				t.Fatalf("SpaceOptimal(%d,%d): %v", card, n, err)
			}
			if !base.Covers(card) {
				t.Fatalf("SpaceOptimal(%d,%d) = %v does not cover", card, n, base)
			}
			if base.N() != n {
				t.Fatalf("SpaceOptimal(%d,%d) has %d components", card, n, base.N())
			}
			got := cost.SpaceRange(base)
			want := bruteMinSpace(card, n)
			if got != want {
				t.Errorf("SpaceOptimal(%d,%d) = %v uses %d bitmaps, brute force found %d",
					card, n, base, got, want)
			}
		}
	}
}

func TestSpaceOptimalKnownValues(t *testing.T) {
	// Paper Section 6: for C = 1000, <32,32> and related bases; for C = 100,
	// the 2-component space-optimal index is base <10,10> (18 bitmaps).
	b, err := SpaceOptimal(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cost.SpaceRange(b) != 18 {
		t.Errorf("C=100 n=2: space %d, want 18 (%v)", cost.SpaceRange(b), b)
	}
	// C = 1000, n = 2: b = ceil(sqrt(1000)) = 32; r=1: 32*31=992 < 1000, so
	// r=2: <32,32>, space 62.
	b, err = SpaceOptimal(1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(core.Base{32, 32}) {
		t.Errorf("C=1000 n=2: base %v, want <32,32>", b)
	}
	// The space-optimal index overall is the base-2 index (Theorem 6.1).
	n := MaxComponents(1000)
	b, err = SpaceOptimal(1000, n)
	if err != nil {
		t.Fatal(err)
	}
	if cost.SpaceRange(b) != n {
		t.Errorf("base-2 index space = %d, want %d", cost.SpaceRange(b), n)
	}
}

// TestTheorem61Monotonicity: space-optimal space is non-increasing in n
// (result 2) and time-optimal time is non-decreasing in n (result 4).
func TestTheorem61Monotonicity(t *testing.T) {
	for _, card := range []uint64{10, 100, 1000, 2406} {
		prevSpace := math.MaxInt
		prevTime := -1.0
		for n := 1; n <= MaxComponents(card); n++ {
			s, err := MinSpace(card, n)
			if err != nil {
				t.Fatal(err)
			}
			if s > prevSpace {
				t.Errorf("C=%d: space-optimal space increased at n=%d (%d > %d)", card, n, s, prevSpace)
			}
			prevSpace = s
			b, err := TimeOptimal(card, n)
			if err != nil {
				t.Fatal(err)
			}
			tm := cost.TimeRange(b, card)
			if tm < prevTime-1e-12 {
				t.Errorf("C=%d: time-optimal time decreased at n=%d (%f < %f)", card, n, tm, prevTime)
			}
			prevTime = tm
		}
	}
}

func TestTimeOptimalMatchesBruteForce(t *testing.T) {
	for _, card := range []uint64{5, 9, 30, 100, 250} {
		for n := 1; n <= MaxComponents(card) && n <= 5; n++ {
			base, err := TimeOptimal(card, n)
			if err != nil {
				t.Fatal(err)
			}
			if !base.Covers(card) || base.N() != n {
				t.Fatalf("TimeOptimal(%d,%d) = %v malformed", card, n, base)
			}
			got := cost.TimeRange(base, card)
			want := bruteBestTime(card, n)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("TimeOptimal(%d,%d) = %v has time %f, brute force found %f",
					card, n, base, got, want)
			}
		}
	}
}

func TestTimeOptimalOverallIsSingleComponent(t *testing.T) {
	// Point (D) of Figure 2: the overall time-optimal index has one
	// component.
	for _, card := range []uint64{10, 100, 1000} {
		single, _ := TimeOptimal(card, 1)
		t1 := cost.TimeRange(single, card)
		for n := 2; n <= MaxComponents(card); n++ {
			b, _ := TimeOptimal(card, n)
			if cost.TimeRange(b, card) < t1 {
				t.Errorf("C=%d: %d-component index beats single component", card, n)
			}
		}
	}
}

func TestBadArguments(t *testing.T) {
	if _, err := SpaceOptimal(1, 1); err == nil {
		t.Error("C=1 must fail")
	}
	if _, err := SpaceOptimal(100, 0); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := SpaceOptimal(100, 8); err == nil {
		t.Error("n beyond ceil(log2 C) must fail")
	}
	if _, err := TimeOptimal(100, 99); err == nil {
		t.Error("n beyond ceil(log2 C) must fail")
	}
	if _, err := SpaceOptimalBest(100, 0); err == nil {
		t.Error("SpaceOptimalBest n=0 must fail")
	}
}

func TestEnumerateMinimalProperties(t *testing.T) {
	for _, card := range []uint64{9, 10, 30, 100} {
		seen := map[string]bool{}
		EnumerateMinimal(card, MaxComponents(card), func(b core.Base) {
			if !b.Covers(card) {
				t.Fatalf("C=%d: enumerated base %v does not cover", card, b)
			}
			// Canonical arrangement: non-increasing.
			for i := 1; i < b.N(); i++ {
				if b[i] > b[i-1] {
					t.Fatalf("C=%d: base %v not in canonical arrangement", card, b)
				}
			}
			// Decrement-minimal.
			if !isMinimal(b, card) {
				t.Fatalf("C=%d: base %v not minimal", card, b)
			}
			if seen[b.String()] {
				t.Fatalf("C=%d: base %v enumerated twice", card, b)
			}
			seen[b.String()] = true
		})
		if len(seen) == 0 {
			t.Fatalf("C=%d: nothing enumerated", card)
		}
		if !seen[core.SingleComponent(card).String()] {
			t.Fatalf("C=%d: single-component base missing", card)
		}
	}
}

func TestFrontierIsPareto(t *testing.T) {
	for _, enc := range []core.Encoding{core.RangeEncoded, core.EqualityEncoded} {
		front := Frontier(100, enc)
		if len(front) < 3 {
			t.Fatalf("enc %v: frontier too small: %d", enc, len(front))
		}
		for i := 1; i < len(front); i++ {
			if front[i].Space <= front[i-1].Space {
				t.Fatalf("enc %v: frontier spaces not increasing", enc)
			}
			if front[i].Time >= front[i-1].Time {
				t.Fatalf("enc %v: frontier times not decreasing", enc)
			}
		}
	}
}

// TestRangeDominatesEquality reproduces Section 5's conclusion on the
// frontier level: for every point on the equality frontier there is a
// range-encoded index at most as large and at least as fast.
func TestRangeDominatesEquality(t *testing.T) {
	for _, card := range []uint64{25, 100} {
		rf := Frontier(card, core.RangeEncoded)
		ef := Frontier(card, core.EqualityEncoded)
		for _, e := range ef {
			// At the all-base-2 extreme the two encodings store the very
			// same bitmaps, so allow a small bookkeeping tolerance there.
			dominated := false
			for _, r := range rf {
				if r.Space <= e.Space && r.Time <= e.Time+0.15 {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Errorf("C=%d: equality point %v (s=%d t=%.3f) not dominated",
					card, e.Base, e.Space, e.Time)
			}
		}
	}
}

// TestKneeMatchesDefinition reproduces the paper's Section 7 finding: the
// approximate characterization (most time-efficient 2-component
// space-optimal index) coincides with the definitional knee.
func TestKneeMatchesDefinition(t *testing.T) {
	for _, card := range []uint64{10, 16, 25, 64, 100, 250, 500, 1000, 2406} {
		approx, err := Knee(card)
		if err != nil {
			t.Fatal(err)
		}
		def, err := KneeByDefinition(card)
		if err != nil {
			t.Fatal(err)
		}
		if !approx.Equal(def.Base) {
			t.Errorf("C=%d: approximate knee %v != definitional knee %v (s=%d t=%.3f)",
				card, approx, def.Base, def.Space, def.Time)
		}
	}
}

// TestKneeKnownDivergence pins the one cardinality in our sweep where the
// paper's approximate characterization misses: at C = 50 the definitional
// knee is the 3-component <2,5,5>, not a 2-component index. The
// approximation is still close (it returns the 2-component <5,10>).
func TestKneeKnownDivergence(t *testing.T) {
	def, err := KneeByDefinition(50)
	if err != nil {
		t.Fatal(err)
	}
	if !def.Base.Equal(core.Base{5, 5, 2}) {
		t.Errorf("C=50 definitional knee = %v; the documented divergence changed", def.Base)
	}
	approx, err := Knee(50)
	if err != nil {
		t.Fatal(err)
	}
	if approx.N() != 2 {
		t.Errorf("C=50 approximate knee = %v, want a 2-component base", approx)
	}
}

func TestKneeIsTwoComponents(t *testing.T) {
	for _, card := range []uint64{10, 100, 1000, 2406} {
		b, err := Knee(card)
		if err != nil {
			t.Fatal(err)
		}
		if b.N() != 2 {
			t.Errorf("C=%d: knee %v has %d components, want 2", card, b, b.N())
		}
		s, _ := MinSpace(card, 2)
		if cost.SpaceRange(b) != s {
			t.Errorf("C=%d: knee %v not space-optimal (%d vs %d)", card, b, cost.SpaceRange(b), s)
		}
	}
}

func TestComponentBounds(t *testing.T) {
	if _, _, err := ComponentBounds(1000, 5); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
	n, np, err := ComponentBounds(1000, 999)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || np != 1 {
		t.Errorf("M=C-1: bounds (%d,%d), want (1,1)", n, np)
	}
	n, np, err = ComponentBounds(1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n > np {
		t.Errorf("n=%d > n'=%d", n, np)
	}
	// n must be the smallest k whose space-optimal fits.
	if s, _ := MinSpace(1000, n); s > 100 {
		t.Errorf("space-optimal at n=%d does not fit", n)
	}
	if n > 1 {
		if s, _ := MinSpace(1000, n-1); s <= 100 {
			t.Errorf("n=%d not minimal", n)
		}
	}
}

// bruteTimeOptUnderSpace searches every minimal base of any number of
// components with space <= m.
func bruteTimeOptUnderSpace(card uint64, m int) (core.Base, float64) {
	var best core.Base
	bestTime := math.Inf(1)
	EnumerateMinimal(card, MaxComponents(card), func(b core.Base) {
		if cost.SpaceRange(b) > m {
			return
		}
		if t := cost.TimeRange(b, card); t < bestTime {
			bestTime = t
			best = b.Clone()
		}
	})
	return best, bestTime
}

func TestTimeOptUnderSpaceMatchesBruteForce(t *testing.T) {
	for _, card := range []uint64{25, 60, 100} {
		minM := MaxComponents(card)
		for m := minM; m <= int(card); m += 3 {
			got, err := TimeOptUnderSpace(card, m)
			if err != nil {
				t.Fatalf("C=%d M=%d: %v", card, m, err)
			}
			if cost.SpaceRange(got) > m {
				t.Fatalf("C=%d M=%d: solution %v violates constraint", card, m, got)
			}
			_, wantTime := bruteTimeOptUnderSpace(card, m)
			if gotTime := cost.TimeRange(got, card); math.Abs(gotTime-wantTime) > 1e-9 {
				t.Errorf("C=%d M=%d: TimeOptAlg found %v (%.4f), brute force %.4f",
					card, m, got, gotTime, wantTime)
			}
		}
	}
}

func TestTimeOptUnderSpaceInfeasible(t *testing.T) {
	if _, err := TimeOptUnderSpace(1000, 3); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

func TestFindSmallestN(t *testing.T) {
	for _, card := range []uint64{25, 100, 1000} {
		for m := MaxComponents(card); m <= int(card); m += 7 {
			n, seed, err := FindSmallestN(card, m)
			if err != nil {
				t.Fatalf("C=%d M=%d: %v", card, m, err)
			}
			if !seed.Covers(card) {
				t.Fatalf("C=%d M=%d: seed %v does not cover", card, m, seed)
			}
			if cost.SpaceRange(seed) != m {
				t.Fatalf("C=%d M=%d: seed %v has space %d, want exactly M", card, m, seed, cost.SpaceRange(seed))
			}
			// n agrees with the smallest k whose space-optimal index fits.
			wantN, _, err := ComponentBounds(card, m)
			if err != nil {
				t.Fatal(err)
			}
			if n != wantN {
				t.Errorf("C=%d M=%d: FindSmallestN n=%d, ComponentBounds n=%d", card, m, n, wantN)
			}
		}
	}
	if _, _, err := FindSmallestN(1000, 4); !errors.Is(err, ErrInfeasible) {
		t.Fatal("expected ErrInfeasible")
	}
}

// TestRefineIndexTheorem81 verifies the Theorem 8.1 contract on random
// seeds: the refined base covers C, never uses more space, and is never
// slower.
func TestRefineIndexTheorem81(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		card := uint64(r.Intn(5000) + 4)
		n := r.Intn(4) + 1
		base := make(core.Base, n)
		prod := uint64(1)
		for i := range base {
			base[i] = uint64(r.Intn(30) + 2)
			prod = satMul(prod, base[i])
		}
		if prod < card {
			continue
		}
		refined := RefineIndex(base, card)
		if !refined.Covers(card) {
			t.Fatalf("C=%d: RefineIndex(%v) = %v does not cover", card, base, refined)
		}
		if cost.SpaceRange(refined) > cost.SpaceRange(base) {
			t.Fatalf("C=%d: RefineIndex(%v) = %v increased space", card, base, refined)
		}
		if cost.TimeRange(refined, card) > cost.TimeRange(base, card)+1e-9 {
			t.Fatalf("C=%d: RefineIndex(%v) = %v increased time (%.4f > %.4f)",
				card, base, refined, cost.TimeRange(refined, card), cost.TimeRange(base, card))
		}
	}
}

func TestRefineIndexSingleComponent(t *testing.T) {
	got := RefineIndex(core.Base{500}, 100)
	if !got.Equal(core.Base{100}) {
		t.Fatalf("RefineIndex(<500>, 100) = %v, want <100>", got)
	}
}

// TestHeuristicNearOptimal reproduces Table 2: the heuristic picks the true
// optimum for the overwhelming majority of space constraints, and when it
// differs the expected-scan gap is small.
func TestHeuristicNearOptimal(t *testing.T) {
	for _, card := range []uint64{25, 100} {
		total, optimal := 0, 0
		maxDiff := 0.0
		for m := MaxComponents(card); m <= int(card)-1; m++ {
			heur, err := TimeOptHeuristic(card, m)
			if err != nil {
				t.Fatalf("C=%d M=%d: %v", card, m, err)
			}
			if cost.SpaceRange(heur) > m {
				t.Fatalf("C=%d M=%d: heuristic %v violates constraint", card, m, heur)
			}
			opt, err := TimeOptUnderSpace(card, m)
			if err != nil {
				t.Fatal(err)
			}
			total++
			ht, ot := cost.TimeRange(heur, card), cost.TimeRange(opt, card)
			if ht-ot < 1e-9 {
				optimal++
			} else if d := ht - ot; d > maxDiff {
				maxDiff = d
			}
		}
		frac := float64(optimal) / float64(total)
		if frac < 0.95 {
			t.Errorf("C=%d: heuristic optimal only %.1f%% of the time", card, 100*frac)
		}
		if maxDiff > 0.5 {
			t.Errorf("C=%d: heuristic max scan gap %.3f too large", card, maxDiff)
		}
	}
}

func TestHeuristicInfeasible(t *testing.T) {
	if _, err := TimeOptHeuristic(1000, 2); !errors.Is(err, ErrInfeasible) {
		t.Fatal("expected ErrInfeasible")
	}
}

func TestCandidateCountSmallCase(t *testing.T) {
	// C = 16, M = 9: n = smallest k with space-opt <= 9: n=2 (<4,4>: 6).
	// Count by hand-checkable enumeration against countK.
	n, np, err := ComponentBounds(16, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CandidateCount(16, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Independent recount via explicit multiset enumeration.
	want := 1
	for k := n; k < np; k++ {
		count := 0
		var rec func(min uint64, prod uint64, space, rem int)
		rec = func(min uint64, prod uint64, space, rem int) {
			if rem == 0 {
				if prod >= 16 && space <= 9 {
					count++
				}
				return
			}
			for b := min; int(b-1)+space <= 9; b++ {
				rec(b, prod*b, space+int(b-1), rem-1)
			}
		}
		rec(2, 1, 0, k)
		want += count
	}
	if got != want {
		t.Errorf("CandidateCount(16,9) = %d, want %d", got, want)
	}
	if _, err := CandidateCount(16, 2); !errors.Is(err, ErrInfeasible) {
		t.Error("expected ErrInfeasible")
	}
}

func TestCandidateCountGrowth(t *testing.T) {
	// |I| grows sharply in the mid-range of M (Figure 14's shape).
	c10, err := CandidateCount(1000, 30)
	if err != nil {
		t.Fatal(err)
	}
	c100, err := CandidateCount(1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c100 <= c10 {
		t.Errorf("candidate count did not grow: %d at M=30, %d at M=100", c10, c100)
	}
	// At M >= C-1 the single-component index is time-optimal outright and
	// the candidate set collapses.
	cBig, err := CandidateCount(1000, 999)
	if err != nil {
		t.Fatal(err)
	}
	if cBig != 1 {
		t.Errorf("CandidateCount(1000, 999) = %d, want 1", cBig)
	}
}

// TestTheoremsWideSweep validates the closed-form constructions across a
// wide cardinality range against brute force (sampled n to bound runtime).
func TestTheoremsWideSweep(t *testing.T) {
	for _, card := range []uint64{7, 33, 129, 511, 2048, 4096, 10007} {
		maxN := MaxComponents(card)
		for _, n := range []int{1, 2, 3, maxN - 1, maxN} {
			if n < 1 || n > maxN {
				continue
			}
			so, err := SpaceOptimal(card, n)
			if err != nil {
				t.Fatalf("C=%d n=%d: %v", card, n, err)
			}
			if !so.Covers(card) || so.N() != n {
				t.Fatalf("C=%d n=%d: bad space-optimal %v", card, n, so)
			}
			// Theorem 6.1(1)'s space expression n(b-2)+r.
			if n >= 2 {
				if s := cost.SpaceRange(so); s != bruteMinSpace(card, n) {
					t.Fatalf("C=%d n=%d: space %d not minimal", card, n, s)
				}
			}
			to, err := TimeOptimal(card, n)
			if err != nil {
				t.Fatal(err)
			}
			if !to.Covers(card) {
				t.Fatalf("C=%d n=%d: time-optimal does not cover", card, n)
			}
			// Construction shape: all base 2 except b_1.
			for i := 1; i < to.N(); i++ {
				if to[i] != 2 {
					t.Fatalf("C=%d n=%d: time-optimal %v not <2..2,b1>", card, n, to)
				}
			}
		}
		// The knee remains 2-component and space-optimal at every C.
		k, err := Knee(card)
		if err != nil {
			t.Fatal(err)
		}
		if card > 4 && k.N() != 2 {
			t.Fatalf("C=%d: knee %v", card, k)
		}
	}
}
