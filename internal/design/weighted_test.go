package design

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
)

// TestWeightedUniformIsAllocateBudget is the issue's identity property:
// all-equal weights at the default operator mix must reproduce
// AllocateBudget exactly — same bases, same spaces, bit-identical times —
// whatever the common weight is.
func TestWeightedUniformIsAllocateBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(4)
		cards := make([]uint64, n)
		demands := make([]AttrDemand, n)
		minTotal := 0
		w := math.Exp(rng.NormFloat64() * 3) // exercise tiny and huge scales
		for i := range cards {
			cards[i] = 2 + uint64(rng.Intn(400))
			demands[i] = AttrDemand{Card: cards[i], Weight: w, RangeFrac: -1}
			minTotal += MaxComponents(cards[i])
		}
		m := minTotal + rng.Intn(30)
		want, err := AllocateBudget(cards, m)
		if err != nil {
			t.Fatalf("AllocateBudget(%v, %d): %v", cards, m, err)
		}
		got, err := AllocateBudgetWeighted(demands, m)
		if err != nil {
			t.Fatalf("AllocateBudgetWeighted(%v, %d): %v", demands, m, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("weight %v, cards %v, m %d:\nweighted  %+v\nuniform   %+v", w, cards, m, got, want)
		}
	}
}

// TestWeightedMatchesBruteForce checks the DP against exhaustive
// enumeration of every frontier-point combination on small instances:
// the weighted total time of the DP's allocation must equal the true
// minimum of sum_i w_i * t_i subject to sum_i s_i <= m.
func TestWeightedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(4)
		demands := make([]AttrDemand, n)
		minTotal := 0
		for i := range demands {
			demands[i] = AttrDemand{
				Card:      2 + uint64(rng.Intn(60)),
				Weight:    rng.Float64() * 10,
				RangeFrac: -1,
			}
			if rng.Intn(2) == 0 {
				demands[i].RangeFrac = rng.Float64()
			}
			minTotal += MaxComponents(demands[i].Card)
		}
		m := minTotal + rng.Intn(12)
		got, err := AllocateBudgetWeighted(demands, m)
		if err != nil {
			t.Fatalf("AllocateBudgetWeighted(%+v, %d): %v", demands, m, err)
		}
		if got.TotalSpace() > m {
			t.Fatalf("allocation overruns budget: %d > %d", got.TotalSpace(), m)
		}
		gotCost := weightedCost(got, demands)

		fronts := make([][]Point, n)
		for i, d := range demands {
			fronts[i] = mixFrontier(d.Card, mixFrac(d))
		}
		best := math.Inf(1)
		pick := make([]int, n)
		var rec func(k, space int, t float64)
		rec = func(k, space int, t float64) {
			if space > m {
				return
			}
			if k == n {
				if t < best {
					best = t
				}
				return
			}
			for pi, p := range fronts[k] {
				pick[k] = pi
				rec(k+1, space+p.Space, t+demands[k].Weight*p.Time)
			}
		}
		rec(0, 0, 0)
		if math.Abs(gotCost-best) > 1e-9*(1+math.Abs(best)) {
			t.Fatalf("demands %+v, m %d: DP weighted cost %v, brute force %v", demands, m, gotCost, best)
		}
	}
}

func weightedCost(a Allocation, demands []AttrDemand) float64 {
	var t float64
	for i, d := range demands {
		t += d.Weight * a.Times[i]
	}
	return t
}

// TestWeightedSkewShiftsBudget pins the qualitative behavior the advisor
// relies on: making one attribute hot must never worsen (and for a tight
// budget strictly improves) the expected scans under that skew vs the
// uniform allocation.
func TestWeightedSkewShiftsBudget(t *testing.T) {
	cards := []uint64{90, 25, 12}
	m := 0
	for _, c := range cards {
		m += MaxComponents(c)
	}
	m += 6 // a little slack to fight over
	uniform, err := AllocateBudget(cards, m)
	if err != nil {
		t.Fatal(err)
	}
	demands := UniformDemands(cards)
	demands[0].Weight = 8 // ~80% of queries hit attribute 0
	skew, err := AllocateBudgetWeighted(demands, m)
	if err != nil {
		t.Fatal(err)
	}
	wu, ws := weightedCost(uniform, demands), weightedCost(skew, demands)
	if ws > wu {
		t.Fatalf("weighted allocation worse under its own profile: %v > %v", ws, wu)
	}
	if ws == wu {
		t.Fatalf("expected the skewed profile to strictly improve on uniform at m=%d (got %v for both)", m, ws)
	}
	if skew.Spaces[0] <= uniform.Spaces[0] {
		t.Errorf("hot attribute did not gain bitmaps: %d vs uniform %d", skew.Spaces[0], uniform.Spaces[0])
	}
}

// TestWeightedErrors covers the argument contract.
func TestWeightedErrors(t *testing.T) {
	if _, err := AllocateBudgetWeighted(nil, 10); err == nil {
		t.Error("no attributes: want error")
	}
	if _, err := AllocateBudgetWeighted([]AttrDemand{{Card: 1, Weight: 1}}, 10); err == nil {
		t.Error("cardinality 1: want error")
	}
	if _, err := AllocateBudgetWeighted([]AttrDemand{{Card: 10, Weight: -1}}, 10); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := AllocateBudgetWeighted([]AttrDemand{{Card: 10, Weight: math.NaN()}}, 10); err == nil {
		t.Error("NaN weight: want error")
	}
	_, err := AllocateBudgetWeighted([]AttrDemand{{Card: 1 << 20, Weight: 1}}, 3)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("tight budget: want ErrInfeasible, got %v", err)
	}
}

// TestMixFrontierDefaultEqualsFrontier: the weighted allocator's frontier
// at the default mix is the design package's canonical frontier.
func TestMixFrontierDefaultEqualsFrontier(t *testing.T) {
	for _, card := range []uint64{2, 7, 25, 100, 1000} {
		got := mixFrontier(card, cost.DefaultRangeFraction)
		want := Frontier(card, core.RangeEncoded)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("C=%d: mixFrontier default != Frontier", card)
		}
	}
}
