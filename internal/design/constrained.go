package design

import (
	"fmt"
	"math"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
)

// feasible reports whether any index fits in M bitmaps: the smallest
// possible index is the base-2 index with ceil(log2 C) bitmaps.
func feasible(card uint64, m int) bool { return m >= MaxComponents(card) }

// ComponentBounds returns the bounds [n, n'] on the number of components of
// the time-optimal index under space constraint M (Figure 13): n is the
// smallest k whose k-component space-optimal index fits in M, and n' the
// smallest k >= n whose k-component time-optimal index fits in M. By
// Theorem 6.1(2,4) the solution has between n and n' components.
func ComponentBounds(card uint64, m int) (n, nprime int, err error) {
	if !feasible(card, m) {
		return 0, 0, fmt.Errorf("%w: M = %d < %d", ErrInfeasible, m, MaxComponents(card))
	}
	maxN := MaxComponents(card)
	for n = 1; n <= maxN; n++ {
		s, err := MinSpace(card, n)
		if err != nil {
			return 0, 0, err
		}
		if s <= m {
			break
		}
	}
	for nprime = n; nprime <= maxN; nprime++ {
		b, err := TimeOptimal(card, nprime)
		if err != nil {
			return 0, 0, err
		}
		if cost.SpaceRange(b) <= m {
			break
		}
	}
	return n, nprime, nil
}

// TimeOptUnderSpace implements Algorithm TimeOptAlg (Figure 12): the
// exactly time-optimal index with at most M stored bitmaps. It prunes the
// search to k-component indexes with k in [n, n') plus the n'-component
// time-optimal index, then exhaustively enumerates decrement-minimal bases
// per k (a non-minimal base is strictly dominated, so the optimum is
// minimal).
func TimeOptUnderSpace(card uint64, m int) (core.Base, error) {
	n, nprime, err := ComponentBounds(card, m)
	if err != nil {
		return nil, err
	}
	best, err := TimeOptimal(card, nprime)
	if err != nil {
		return nil, err
	}
	if cost.SpaceRange(best) > m {
		return nil, fmt.Errorf("design: internal: n'-component time-optimal index exceeds M")
	}
	bestTime := cost.TimeRange(best, card)
	for k := n; k < nprime; k++ {
		enumerateMinimalK(card, k, m, func(b core.Base) {
			if t := cost.TimeRange(b, card); t < bestTime {
				bestTime = t
				best = b.Clone()
			}
		})
	}
	return best, nil
}

// enumerateMinimalK visits every decrement-minimal k-component base
// covering card with at most maxSpace stored bitmaps, in canonical
// arrangement.
func enumerateMinimalK(card uint64, k, maxSpace int, visit func(core.Base)) {
	ms := make([]uint64, 0, k)
	var rec func(minB uint64, prod uint64, space int)
	rec = func(minB uint64, prod uint64, space int) {
		remaining := k - len(ms)
		if remaining == 1 {
			need := (card + prod - 1) / prod
			if need >= minB && need >= 2 && space+int(need-1) <= maxSpace {
				ms = append(ms, need)
				if isMinimal(ms, card) {
					visit(arrange(ms))
				}
				ms = ms[:len(ms)-1]
			}
			return
		}
		for b := minB; satMul(prod, b) < card; b++ {
			ns := space + int(b-1)
			// Every remaining component needs at least b-1 more bitmaps.
			if ns+(remaining-1)*int(b-1) > maxSpace {
				break
			}
			ms = append(ms, b)
			rec(b, prod*b, ns)
			ms = ms[:len(ms)-1]
		}
	}
	rec(2, 1, 0)
}

// CandidateCount returns |I|, the size of the candidate set Algorithm
// TimeOptAlg enumerates (Figure 14): all k-component bases (as multisets of
// base numbers) with product >= C and at most M bitmaps, for k in [n, n'),
// plus one for the n'-component time-optimal index.
func CandidateCount(card uint64, m int) (int, error) {
	n, nprime, err := ComponentBounds(card, m)
	if err != nil {
		return 0, err
	}
	total := 1 // the n'-component time-optimal index
	for k := n; k < nprime; k++ {
		total += countK(card, k, m)
	}
	return total, nil
}

// countK counts non-decreasing multisets of k base numbers, each >= 2,
// with product >= card and sum of (b_i - 1) <= maxSpace.
func countK(card uint64, k, maxSpace int) int {
	var rec func(minB, prod uint64, space, remaining int) int
	rec = func(minB, prod uint64, space, remaining int) int {
		if remaining == 1 {
			// Final component: any b in [lo, hi] where lo makes the product
			// cover card and hi exhausts the space budget.
			lo := (card + prod - 1) / prod
			if lo < minB {
				lo = minB
			}
			if lo < 2 {
				lo = 2
			}
			hi := uint64(maxSpace-space) + 1
			if hi < lo {
				return 0
			}
			return int(hi - lo + 1)
		}
		total := 0
		for b := minB; ; b++ {
			ns := space + int(b-1)
			if ns+(remaining-1)*int(b-1) > maxSpace {
				break
			}
			total += rec(b, satMul(prod, b), ns, remaining-1)
		}
		return total
	}
	return rec(2, 1, 0, k)
}

// FindSmallestN implements Algorithm FindSmallestN (Figure 15): the least
// number of components n such that the n-component space-optimal index
// fits in M bitmaps, together with a seed n-component index that uses
// exactly M bitmaps: with b = floor((M+n)/n) and r = (M+n) mod n, the base
// has r components of b+1 and n-r of b.
func FindSmallestN(card uint64, m int) (int, core.Base, error) {
	if !feasible(card, m) {
		return 0, nil, fmt.Errorf("%w: M = %d < %d", ErrInfeasible, m, MaxComponents(card))
	}
	for n := 1; ; n++ {
		b := uint64(m+n) / uint64(n)
		r := (m + n) % n
		if b < 2 {
			return 0, nil, fmt.Errorf("design: internal: FindSmallestN ran past M = %d, C = %d", m, card)
		}
		if mixedPowAtLeast(b+1, r, b, n-r, card) {
			base := make(core.Base, n)
			for i := 0; i < r; i++ {
				base[i] = b + 1
			}
			for i := r; i < n; i++ {
				base[i] = b
			}
			return n, base, nil
		}
	}
}

// RefineIndex implements Algorithm RefineIndex (Figure 15, justified by
// Theorem 8.1): it improves the time-efficiency of a base without
// increasing its space by repeatedly transferring delta from the smallest
// base number b_p to the next smallest b_q — which increases 1/b_p + 1/b_q
// while keeping the product at least C — choosing the largest delta that
// preserves coverage, then recomputing b_1 as the exact remainder
// ceil(C / prod(b_2..b_n)).
//
// The returned base covers card, has Space <= Space(base) and
// Time <= Time(base).
func RefineIndex(base core.Base, card uint64) core.Base {
	n := len(base)
	out := make(core.Base, n)
	if n == 1 {
		out[0] = card
		if out[0] < 2 {
			out[0] = 2
		}
		return out
	}
	seq := append([]uint64(nil), base...)
	prod := uint64(1)
	for _, b := range seq {
		prod = satMul(prod, b)
	}
	// out is filled from position n down to 2 (indexes n-1 .. 1).
	for i := n - 1; i >= 1; i-- {
		p := argMin(seq)
		bp := seq[p]
		seq = append(seq[:p], seq[p+1:]...)
		if bp > 2 {
			q := argMin(seq)
			bq := seq[q]
			delta := maxDelta(bp, bq, prod, card)
			if delta > bp-2 {
				delta = bp - 2
			}
			if delta > 0 {
				prod = prod / (bp * bq) * (bp - delta) * (bq + delta)
				bp -= delta
				seq[q] = bq + delta
			}
		}
		out[i] = bp
	}
	// Component 1 takes exactly what is still needed.
	rest := uint64(1)
	for i := 1; i < n; i++ {
		rest = satMul(rest, out[i])
	}
	b1 := (card + rest - 1) / rest
	if b1 < 2 {
		b1 = 2
	}
	out[0] = b1
	return out
}

func argMin(s []uint64) int {
	m := 0
	for i, v := range s {
		if v < s[m] {
			m = i
		}
	}
	return m
}

// maxDelta returns the largest integer delta >= 0 such that
// (bp-delta)*(bq+delta) >= bp*bq*card/prod, i.e. such that shrinking bp and
// growing bq by delta keeps the full base product at least card. Solving
// the quadratic gives delta <= (bp - bq + sqrt((bp+bq)^2 - 4K))/2 with
// K = bp*bq*card/prod.
func maxDelta(bp, bq, prod, card uint64) uint64 {
	k := float64(bp) * float64(bq) * float64(card) / float64(prod)
	disc := float64(bp+bq)*float64(bp+bq) - 4*k
	if disc < 0 {
		return 0
	}
	d := math.Floor((float64(bp) - float64(bq) + math.Sqrt(disc)) / 2)
	if d < 0 {
		return 0
	}
	delta := uint64(d)
	// Float rounding can overshoot by one; verify exactly and back off.
	rest := prod / (bp * bq)
	for delta > 0 && satMul(rest, satMul(bp-delta, bq+delta)) < card {
		delta--
	}
	return delta
}

// TimeOptHeuristic implements Algorithm TimeOptHeur (Figure 12): seed with
// FindSmallestN, return the n-component time-optimal index when it fits,
// otherwise refine the seed. Section 8.2 reports it selects the true
// optimum at least 97% of the time.
func TimeOptHeuristic(card uint64, m int) (core.Base, error) {
	n, seed, err := FindSmallestN(card, m)
	if err != nil {
		return nil, err
	}
	topt, err := TimeOptimal(card, n)
	if err != nil {
		return nil, err
	}
	if cost.SpaceRange(topt) <= m {
		return topt, nil
	}
	return RefineIndex(seed, card), nil
}
