package wah

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bitmapindex/internal/bitvec"
)

func randomVec(r *rand.Rand, n int, density float64) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if r.Float64() < density {
			v.Set(i)
		}
	}
	return v
}

func TestRoundTripLengths(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 62, 63, 64, 65, 125, 126, 127, 1000, 4096} {
		for _, density := range []float64{0, 0.01, 0.5, 0.99, 1} {
			v := randomVec(r, n, density)
			c := Compress(v)
			if c.Len() != n {
				t.Fatalf("n=%d: Len = %d", n, c.Len())
			}
			got := c.Decompress()
			if !got.Equal(v) {
				t.Fatalf("n=%d density=%.2f: round trip mismatch", n, density)
			}
			if c.Count() != v.Count() {
				t.Fatalf("n=%d density=%.2f: Count %d != %d", n, density, c.Count(), v.Count())
			}
		}
	}
}

func TestCompressionRatioOnRuns(t *testing.T) {
	// A long constant run compresses to a handful of words.
	v := bitvec.New(63 * 100000)
	for i := 0; i < 63*10; i++ {
		v.Set(i)
	}
	c := Compress(v)
	if c.SizeBytes() > 64 {
		t.Fatalf("compressed size %d bytes for an almost-constant bitmap", c.SizeBytes())
	}
	// Incompressible random data must not blow up beyond ~64/63 overhead.
	r := rand.New(rand.NewSource(2))
	v = randomVec(r, 63*1000, 0.5)
	c = Compress(v)
	if c.SizeBytes() > v.SizeBytes()*9/8+16 {
		t.Fatalf("compressed random data %d bytes vs plain %d", c.SizeBytes(), v.SizeBytes())
	}
}

func TestLogicalOpsMatchPlain(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := r.Intn(2000)
		da, db := r.Float64(), r.Float64()*0.1 // mixed densities exercise fills
		a, b := randomVec(r, n, da), randomVec(r, n, db)
		ca, cb := Compress(a), Compress(b)
		check := func(name string, got *Bitmap, plain func(x, y *bitvec.Vector) *bitvec.Vector) {
			want := plain(a, b)
			if !got.Decompress().Equal(want) {
				t.Fatalf("trial %d n=%d: %s mismatch", trial, n, name)
			}
			if got.Count() != want.Count() {
				t.Fatalf("trial %d n=%d: %s compressed Count wrong", trial, n, name)
			}
		}
		check("And", And(ca, cb), func(x, y *bitvec.Vector) *bitvec.Vector {
			z := x.Clone()
			z.And(y)
			return z
		})
		check("Or", Or(ca, cb), func(x, y *bitvec.Vector) *bitvec.Vector {
			z := x.Clone()
			z.Or(y)
			return z
		})
		check("Xor", Xor(ca, cb), func(x, y *bitvec.Vector) *bitvec.Vector {
			z := x.Clone()
			z.Xor(y)
			return z
		})
		check("AndNot", AndNot(ca, cb), func(x, y *bitvec.Vector) *bitvec.Vector {
			z := x.Clone()
			z.AndNot(y)
			return z
		})
	}
}

func TestNotMatchesPlain(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 63, 64, 126, 127, 500, 63 * 7} {
		v := randomVec(r, n, 0.3)
		got := Compress(v).Not().Decompress()
		want := v.Clone()
		want.Not()
		if !got.Equal(want) {
			t.Fatalf("n=%d: Not mismatch", n)
		}
	}
	// Double complement is identity, and all-ones fills stay well-formed.
	ones := bitvec.NewOnes(63 * 50)
	c := Compress(ones)
	if !c.Not().Not().Decompress().Equal(ones) {
		t.Fatal("double Not not identity")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := Compress(bitvec.New(10)), Compress(bitvec.New(11))
	defer func() {
		if recover() == nil {
			t.Fatal("And on mismatched lengths did not panic")
		}
	}()
	And(a, b)
}

func TestDeMorganProperty(t *testing.T) {
	f := func(seedA, seedB int64, nRaw uint16) bool {
		n := int(nRaw) % 1500
		ra, rb := rand.New(rand.NewSource(seedA)), rand.New(rand.NewSource(seedB))
		a, b := Compress(randomVec(ra, n, 0.2)), Compress(randomVec(rb, n, 0.8))
		lhs := And(a, b).Not()
		rhs := Or(a.Not(), b.Not())
		return lhs.Decompress().Equal(rhs.Decompress())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 63, 100, 1000} {
		v := randomVec(r, n, 0.1)
		c := Compress(v)
		p, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var d Bitmap
		if err := d.UnmarshalBinary(p); err != nil {
			t.Fatal(err)
		}
		if !d.Decompress().Equal(v) {
			t.Fatalf("n=%d: marshal round trip mismatch", n)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var b Bitmap
	if err := b.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("short payload must fail")
	}
	if err := b.UnmarshalBinary(make([]byte, 13)); err == nil {
		t.Fatal("non-word-aligned payload must fail")
	}
	// Length claims 100 groups but stream holds none.
	p := make([]byte, 8)
	p[0] = 200
	if err := b.UnmarshalBinary(p); err == nil {
		t.Fatal("group count mismatch must fail")
	}
}

func TestFillRunMergingAcrossAppends(t *testing.T) {
	// 1000 zero groups then 1000 one groups must be 2 fill words.
	n := 63 * 2000
	v := bitvec.New(n)
	for i := 63 * 1000; i < n; i++ {
		v.Set(i)
	}
	c := Compress(v)
	if len(c.words) != 2 {
		t.Fatalf("expected 2 fill words, got %d", len(c.words))
	}
}

func BenchmarkCompressSparse(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	v := randomVec(r, 1<<20, 0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(v)
	}
}

func BenchmarkAndCompressedSparse(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x := Compress(randomVec(r, 1<<20, 0.001))
	y := Compress(randomVec(r, 1<<20, 0.001))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(x, y)
	}
}

func TestUnmarshalRejectsOverhangingTail(t *testing.T) {
	// Regression for a fuzzer find: nbits = 32 with a literal word whose
	// payload has bits set beyond bit 31 made Count and Decompress
	// disagree; such payloads must be rejected.
	p := make([]byte, 16)
	p[0] = 32 // nbits
	for i := 8; i < 16; i++ {
		p[i] = 0x30 // literal word with bits above the 32-bit tail
	}
	var b Bitmap
	if err := b.UnmarshalBinary(p); err == nil {
		t.Fatal("overhanging tail literal must be rejected")
	}
	// A ones fill covering a partial tail group is equally ambiguous.
	p = make([]byte, 16)
	p[0] = 32
	w := fillFlag | fillOne | 1
	for i := 0; i < 8; i++ {
		p[8+i] = byte(w >> uint(8*i))
	}
	if err := b.UnmarshalBinary(p); err == nil {
		t.Fatal("ones-fill tail must be rejected")
	}
	// A zero fill tail stays acceptable.
	p = make([]byte, 16)
	p[0] = 32
	w = fillFlag | 1
	for i := 0; i < 8; i++ {
		p[8+i] = byte(w >> uint(8*i))
	}
	if err := b.UnmarshalBinary(p); err != nil {
		t.Fatalf("zero-fill tail should be accepted: %v", err)
	}
	if b.Count() != 0 || b.Decompress().Count() != 0 {
		t.Fatal("zero-fill tail semantics wrong")
	}
}
