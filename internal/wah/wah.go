// Package wah implements word-aligned hybrid (WAH-style) run-length
// compression for bitmaps, the bitmap-specific alternative to the paper's
// general-purpose zlib compression. It is included as an extension /
// ablation: unlike zlib, WAH supports logical operations directly on the
// compressed form, trading some compression ratio for the elimination of
// the decompression step that dominates the paper's cCS timing results
// (Figure 16(a)).
//
// Encoding: a bitmap is split into 63-bit groups. Each compressed 64-bit
// word is either a literal (MSB 0, low 63 bits of payload) or a fill
// (MSB 1; bit 62 the fill bit; low 62 bits the number of consecutive
// all-zero or all-one groups). A trailing partial group is always stored
// as a literal, zero-padded.
package wah

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/invariant"
)

const (
	groupBits = 63
	fillFlag  = uint64(1) << 63
	fillOne   = uint64(1) << 62
	countMask = fillOne - 1
	groupMask = (uint64(1) << groupBits) - 1
)

// Bitmap is a WAH-compressed bitmap of a fixed logical length.
type Bitmap struct {
	words []uint64
	nbits int
}

// Len returns the logical length in bits.
func (b *Bitmap) Len() int { return b.nbits }

// SizeBytes returns the compressed size in bytes (excluding the length
// header).
func (b *Bitmap) SizeBytes() int { return 8 * len(b.words) }

func (b *Bitmap) groups() int { return (b.nbits + groupBits - 1) / groupBits }

// group extracts the g-th 63-bit group from a plain vector's words.
//
//bix:hotpath
func group(words []uint64, nbits, g int) uint64 {
	lo := g * groupBits
	wi, off := lo/64, uint(lo%64)
	v := words[wi] >> off
	if off > 64-groupBits && wi+1 < len(words) {
		v |= words[wi+1] << (64 - off)
	}
	return v & groupMask
}

// appendGroup appends one group to the compressed stream, merging fills.
// tail marks the final partial group, which must stay literal.
func appendGroup(dst []uint64, g uint64, tail bool) []uint64 {
	var fill uint64
	switch {
	case tail || (g != 0 && g != groupMask):
		return append(dst, g)
	case g == 0:
		fill = fillFlag
	default:
		fill = fillFlag | fillOne
	}
	if n := len(dst); n > 0 && dst[n-1]&^countMask == fill && dst[n-1]&countMask < countMask {
		dst[n-1]++
		return dst
	}
	return append(dst, fill|1)
}

// Compress encodes a plain bit vector.
func Compress(v *bitvec.Vector) *Bitmap {
	b := &Bitmap{nbits: v.Len()}
	ng := b.groups()
	words := v.Words()
	for g := 0; g < ng; g++ {
		b.words = appendGroup(b.words, group(words, v.Len(), g), g == ng-1 && v.Len()%groupBits != 0)
	}
	return b
}

// reader streams the groups of a compressed bitmap.
type reader struct {
	words []uint64
	pos   int
	// pending fill state
	fillLeft uint64
	fillVal  uint64
}

//bix:hotpath
func (r *reader) next() uint64 {
	if r.fillLeft > 0 {
		r.fillLeft--
		return r.fillVal
	}
	w := r.words[r.pos]
	r.pos++
	if w&fillFlag == 0 {
		return w
	}
	r.fillVal = 0
	if w&fillOne != 0 {
		r.fillVal = groupMask
	}
	r.fillLeft = w&countMask - 1
	return r.fillVal
}

// Decompress expands the bitmap to a plain vector.
func (b *Bitmap) Decompress() *bitvec.Vector {
	v := bitvec.New(b.nbits)
	words := make([]uint64, (b.nbits+63)/64)
	r := reader{words: b.words}
	ng := b.groups()
	for g := 0; g < ng; g++ {
		gw := r.next()
		lo := g * groupBits
		wi, off := lo/64, uint(lo%64)
		words[wi] |= gw << off
		if off > 64-groupBits && wi+1 < len(words) {
			words[wi+1] |= gw >> (64 - off)
		}
	}
	// Rebuild via payload to respect the vector's tail invariant.
	payload := make([]byte, (b.nbits+7)/8)
	for i := range payload {
		payload[i] = byte(words[i/8] >> uint(8*(i%8)))
	}
	if err := v.SetPayload(b.nbits, payload); err != nil {
		panic("wah: internal: " + err.Error())
	}
	invariant.TailZero(v.Words(), v.Len())
	return v
}

// binop merges two compressed bitmaps group-wise.
func binop(a, b *Bitmap, f func(x, y uint64) uint64) *Bitmap {
	if a.nbits != b.nbits {
		panic(fmt.Sprintf("wah: length mismatch %d vs %d", a.nbits, b.nbits))
	}
	out := &Bitmap{nbits: a.nbits}
	ra, rb := reader{words: a.words}, reader{words: b.words}
	ng := a.groups()
	tail := a.nbits%groupBits != 0
	for g := 0; g < ng; g++ {
		out.words = appendGroup(out.words, f(ra.next(), rb.next())&groupMask, tail && g == ng-1)
	}
	return out
}

// And returns a AND b on the compressed form.
func And(a, b *Bitmap) *Bitmap { return binop(a, b, func(x, y uint64) uint64 { return x & y }) }

// Or returns a OR b on the compressed form.
func Or(a, b *Bitmap) *Bitmap { return binop(a, b, func(x, y uint64) uint64 { return x | y }) }

// Xor returns a XOR b on the compressed form.
func Xor(a, b *Bitmap) *Bitmap { return binop(a, b, func(x, y uint64) uint64 { return x ^ y }) }

// AndNot returns a AND NOT b on the compressed form.
func AndNot(a, b *Bitmap) *Bitmap { return binop(a, b, func(x, y uint64) uint64 { return x &^ y }) }

// Not returns the complement on the compressed form, masking the trailing
// partial group.
func (b *Bitmap) Not() *Bitmap {
	out := &Bitmap{nbits: b.nbits}
	r := reader{words: b.words}
	ng := b.groups()
	for g := 0; g < ng; g++ {
		gw := ^r.next() & groupMask
		last := g == ng-1
		if rem := b.nbits % groupBits; last && rem != 0 {
			gw &= (uint64(1) << uint(rem)) - 1
			out.words = appendGroup(out.words, gw, true)
			continue
		}
		out.words = appendGroup(out.words, gw, false)
	}
	return out
}

// Count returns the number of set bits without decompressing.
//
//bix:hotpath
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		if w&fillFlag == 0 {
			c += bits.OnesCount64(w)
		} else if w&fillOne != 0 {
			c += groupBits * int(w&countMask)
		}
	}
	return c
}

// MarshalBinary serializes the compressed bitmap: an 8-byte little-endian
// bit length followed by the compressed words.
func (b *Bitmap) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+8*len(b.words))
	binary.LittleEndian.PutUint64(out, uint64(b.nbits))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[8+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary restores a bitmap serialized by MarshalBinary.
func (b *Bitmap) UnmarshalBinary(p []byte) error {
	if len(p) < 8 || (len(p)-8)%8 != 0 {
		return fmt.Errorf("wah: bad payload length %d", len(p))
	}
	n := binary.LittleEndian.Uint64(p)
	if n > uint64(int(^uint(0)>>1)) {
		return fmt.Errorf("wah: length %d overflows int", n)
	}
	b.nbits = int(n)
	b.words = make([]uint64, (len(p)-8)/8)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(p[8+8*i:])
	}
	// Validate that the stream decodes to exactly the right group count.
	// The running total is bounds-checked per word: fill counts go up to
	// 2^62-1, so an unchecked sum wraps int64 and a crafted stream could
	// wrap it back to exactly groups(), leaving Count (which trusts every
	// fill's full count) disagreeing with Decompress (which stops after
	// groups() groups).
	got := 0
	for _, w := range b.words {
		if w&fillFlag == 0 {
			got++
		} else {
			c := int(w & countMask)
			if c == 0 {
				return fmt.Errorf("wah: zero-length fill word")
			}
			got += c
		}
		if got > b.groups() {
			return fmt.Errorf("wah: stream exceeds the %d groups the length needs", b.groups())
		}
	}
	if got != b.groups() {
		return fmt.Errorf("wah: stream has %d groups, length needs %d", got, b.groups())
	}
	// A partial tail group must not carry bits beyond the logical length,
	// or Count and Decompress would disagree. Compress always emits the
	// tail as a zero-padded literal; a zero fill is equally unambiguous.
	if rem := b.nbits % groupBits; rem != 0 && len(b.words) > 0 {
		last := b.words[len(b.words)-1]
		switch {
		case last&fillFlag == 0:
			if last&groupMask&^((uint64(1)<<uint(rem))-1) != 0 {
				return fmt.Errorf("wah: tail literal has bits beyond length %d", b.nbits)
			}
		case last&fillOne != 0:
			return fmt.Errorf("wah: tail group inside a ones fill is ambiguous")
		}
	}
	return nil
}
