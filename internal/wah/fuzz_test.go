package wah

import (
	"testing"

	"bitmapindex/internal/bitvec"
)

// FuzzUnmarshal ensures arbitrary byte strings never panic the decoder,
// and that well-formed payloads survive the round trip.
func FuzzUnmarshal(f *testing.F) {
	seed := Compress(bitvec.FromIndices(200, []int{1, 63, 64, 130}))
	p, _ := seed.MarshalBinary()
	f.Add(p)
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		var b Bitmap
		if err := b.UnmarshalBinary(data); err != nil {
			return // malformed input rejected: fine
		}
		// Accepted payloads must decompress and re-serialize faithfully.
		v := b.Decompress()
		if v.Len() != b.Len() {
			t.Fatalf("length drift: %d vs %d", v.Len(), b.Len())
		}
		if b.Count() != v.Count() {
			t.Fatalf("count drift: %d vs %d", b.Count(), v.Count())
		}
		rt := Compress(v)
		if rt.Count() != b.Count() || !rt.Decompress().Equal(v) {
			t.Fatal("round trip drift")
		}
	})
}
