package wah

import (
	"bytes"
	"encoding/binary"
	"testing"

	"bitmapindex/internal/bitvec"
)

// vecFromBytes builds an n-bit dense vector from a raw payload, zero
// padding or truncating as needed (and masking the tail).
func vecFromBytes(n int, p []byte) *bitvec.Vector {
	need := (n + 7) / 8
	buf := make([]byte, need)
	copy(buf, p)
	if n%8 != 0 && need > 0 {
		buf[need-1] &= byte(1<<(n%8)) - 1
	}
	v := bitvec.New(n)
	if err := v.SetPayload(n, buf); err != nil {
		panic(err)
	}
	return v
}

// FuzzOpsVsDecompressed differentially checks the compressed-domain
// operations (And/Or/Xor/AndNot, Not, Count) against the same operations
// on Decompress()ed dense vectors. Seeds pin the zero-length bitmap, the
// 63/64/65-bit tails either side of the group width, and long fills.
func FuzzOpsVsDecompressed(f *testing.F) {
	f.Add(uint32(0), []byte{}, []byte{})
	f.Add(uint32(1), []byte{1}, []byte{0})
	f.Add(uint32(63), bytes.Repeat([]byte{0xff}, 8), bytes.Repeat([]byte{0x55}, 8))
	f.Add(uint32(64), bytes.Repeat([]byte{0xaa}, 8), bytes.Repeat([]byte{0xff}, 8))
	f.Add(uint32(65), bytes.Repeat([]byte{0xff}, 9), []byte{0x01})
	f.Add(uint32(126), bytes.Repeat([]byte{0xff}, 16), make([]byte, 16))
	f.Add(uint32(4097), bytes.Repeat([]byte{0xff}, 513), bytes.Repeat([]byte{0x00}, 513))
	f.Fuzz(func(t *testing.T, n32 uint32, pa, pb []byte) {
		n := int(n32 % 5000)
		va, vb := vecFromBytes(n, pa), vecFromBytes(n, pb)
		wa, wb := Compress(va), Compress(vb)
		if wa.Count() != va.Count() || wb.Count() != vb.Count() {
			t.Fatalf("Count mismatch: wah %d/%d dense %d/%d", wa.Count(), wb.Count(), va.Count(), vb.Count())
		}
		check := func(name string, got *Bitmap, want *bitvec.Vector) {
			if got.Len() != want.Len() {
				t.Fatalf("%s: Len %d want %d", name, got.Len(), want.Len())
			}
			if got.Count() != want.Count() {
				t.Fatalf("%s: Count %d want %d", name, got.Count(), want.Count())
			}
			if !got.Decompress().Equal(want) {
				t.Fatalf("%s: bits differ", name)
			}
			// Compressed-domain results must be canonical: byte-identical
			// to compressing the dense answer.
			gp, _ := got.MarshalBinary()
			wp, _ := Compress(want).MarshalBinary()
			if !bytes.Equal(gp, wp) {
				t.Fatalf("%s: non-canonical compressed result", name)
			}
		}
		and := va.Clone()
		and.And(vb)
		check("and", And(wa, wb), and)
		or := va.Clone()
		or.Or(vb)
		check("or", Or(wa, wb), or)
		xor := va.Clone()
		xor.Xor(vb)
		check("xor", Xor(wa, wb), xor)
		andnot := va.Clone()
		andnot.AndNot(vb)
		check("andnot", AndNot(wa, wb), andnot)
		not := va.Clone()
		not.Not()
		check("not", wa.Not(), not)
	})
}

// wrapPayload is the regression input for the group-count accumulator
// overflow: a 126-bit bitmap whose five fill words claim 2^64+2 groups,
// wrapping an unchecked int sum to exactly the 2 groups the length needs.
// Before the bounds check it was accepted, with Count()=378 on a bitmap
// that decompresses to all zeros.
func wrapPayload() []byte {
	p := make([]byte, 8+8*5)
	binary.LittleEndian.PutUint64(p, 126)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(p[8+8*i:], fillFlag|countMask)
	}
	binary.LittleEndian.PutUint64(p[8+8*4:], fillFlag|fillOne|6)
	return p
}

// TestUnmarshalRejectsWrappedGroupCount pins the overflow fix
// deterministically; the same payload is a FuzzUnmarshal seed.
func TestUnmarshalRejectsWrappedGroupCount(t *testing.T) {
	var b Bitmap
	if err := b.UnmarshalBinary(wrapPayload()); err == nil {
		t.Fatalf("payload with wrapped group count accepted: Count=%d, decompressed=%d",
			b.Count(), b.Decompress().Count())
	}
}

// TestAppendGroupFillSaturation exercises the fill-merge cap: a fill at
// the maximum run count must not be incremented past countMask (which
// would flip the fill bit); the next uniform group starts a new fill.
func TestAppendGroupFillSaturation(t *testing.T) {
	dst := []uint64{fillFlag | countMask}
	dst = appendGroup(dst, 0, false)
	want := []uint64{fillFlag | countMask, fillFlag | 1}
	if len(dst) != 2 || dst[0] != want[0] || dst[1] != want[1] {
		t.Fatalf("zero-fill saturation: got %x want %x", dst, want)
	}
	dst = []uint64{fillFlag | fillOne | countMask}
	dst = appendGroup(dst, groupMask, false)
	want = []uint64{fillFlag | fillOne | countMask, fillFlag | fillOne | 1}
	if len(dst) != 2 || dst[0] != want[0] || dst[1] != want[1] {
		t.Fatalf("ones-fill saturation: got %x want %x", dst, want)
	}
}

// FuzzUnmarshal ensures arbitrary byte strings never panic the decoder,
// and that well-formed payloads survive the round trip.
func FuzzUnmarshal(f *testing.F) {
	seed := Compress(bitvec.FromIndices(200, []int{1, 63, 64, 130}))
	p, _ := seed.MarshalBinary()
	f.Add(p)
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Add(wrapPayload())
	f.Fuzz(func(t *testing.T, data []byte) {
		var b Bitmap
		if err := b.UnmarshalBinary(data); err != nil {
			return // malformed input rejected: fine
		}
		// Accepted payloads must decompress and re-serialize faithfully.
		v := b.Decompress()
		if v.Len() != b.Len() {
			t.Fatalf("length drift: %d vs %d", v.Len(), b.Len())
		}
		if b.Count() != v.Count() {
			t.Fatalf("count drift: %d vs %d", b.Count(), v.Count())
		}
		rt := Compress(v)
		if rt.Count() != b.Count() || !rt.Decompress().Equal(v) {
			t.Fatal("round trip drift")
		}
	})
}
