package workload

import (
	"math"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/design"
	"bitmapindex/internal/telemetry"
)

// uniformDesigns builds the designs AllocateBudget would choose at the
// given slack over the minimum budget — the "current" state of a catalog
// whose operator never heard of workload skew.
func uniformDesigns(t *testing.T, cards []uint64, slack int) []AttrDesign {
	t.Helper()
	m := 0
	for _, c := range cards {
		m += design.MaxComponents(c)
	}
	alloc, err := design.AllocateBudget(cards, m+slack)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"region", "status", "tier"}
	designs := make([]AttrDesign, len(cards))
	for i, c := range cards {
		designs[i] = NewAttrDesign(names[i], c, alloc.Bases[i], core.RangeEncoded, "raw", "none")
	}
	return designs
}

func skewedProfile(attrs []AttrInfo, hot int, hotQueries, coldQueries int64) Profile {
	p := Profile{Version: ProfileVersion}
	for i, ai := range attrs {
		ap := AttrProfile{Name: ai.Name, Card: ai.Card, Range: coldQueries}
		if i == hot {
			ap.Range = hotQueries
		}
		p.Attrs = append(p.Attrs, ap)
	}
	return p
}

// TestAdviseSkewRecommendsHotAttribute is the advisor's core promise: a
// workload that hammers one attribute gets a recommendation that beats
// the uniform design under that workload, with drift flagged and the
// hot attribute gaining bitmaps.
func TestAdviseSkewRecommendsHotAttribute(t *testing.T) {
	cards := []uint64{90, 25, 12}
	designs := uniformDesigns(t, cards, 6)
	attrs := make([]AttrInfo, len(designs))
	for i, d := range designs {
		attrs[i] = AttrInfo{Name: d.Name, Card: d.Card}
	}
	p := skewedProfile(attrs, 0, 80, 10) // 80% of queries hit attr 0

	rep, err := Advise("t", designs, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalQueries != 100 {
		t.Errorf("TotalQueries = %d, want 100", rep.TotalQueries)
	}
	// Observed frequencies (0.8, 0.1, 0.1) vs uniform 1/3:
	// TV distance = (|0.8-1/3| + 2*|0.1-1/3|)/2 = 0.7/1.5 = 0.4666...
	if math.Abs(rep.Drift-7.0/15) > 1e-12 {
		t.Errorf("Drift = %v, want %v", rep.Drift, 7.0/15)
	}
	if !rep.Drifted {
		t.Error("80/10/10 split not flagged as drifted")
	}
	if rep.Gain <= 0 {
		t.Errorf("Gain = %v, want > 0 (recommendation must beat the uniform design)", rep.Gain)
	}
	if rep.RecommendedTime >= rep.CurrentTime {
		t.Errorf("RecommendedTime %v >= CurrentTime %v", rep.RecommendedTime, rep.CurrentTime)
	}
	hot := rep.Attrs[0]
	if hot.RecommendedSpace <= hot.CurrentSpace {
		t.Errorf("hot attribute space: recommended %d <= current %d", hot.RecommendedSpace, hot.CurrentSpace)
	}
	if math.Abs(hot.Frequency-0.8) > 1e-12 {
		t.Errorf("hot frequency = %v, want 0.8", hot.Frequency)
	}
	// Pure one-sided range workload.
	if hot.RangeFrac != 1 {
		t.Errorf("hot range fraction = %v, want 1", hot.RangeFrac)
	}
	// The recommendation must respect the current design's budget.
	recSpace := 0
	for _, a := range rep.Attrs {
		recSpace += a.RecommendedSpace
	}
	if recSpace > rep.Budget {
		t.Errorf("recommendation overruns budget: %d > %d", recSpace, rep.Budget)
	}
}

// TestAdviseUniformProfileIsNeutral: under a uniform (or empty) profile
// the current AllocateBudget design is already optimal, so the advisor
// must report zero gain and zero drift.
func TestAdviseUniformProfileIsNeutral(t *testing.T) {
	cards := []uint64{90, 25, 12}
	designs := uniformDesigns(t, cards, 6)
	attrs := make([]AttrInfo, len(designs))
	for i, d := range designs {
		attrs[i] = AttrInfo{Name: d.Name, Card: d.Card}
	}
	for _, tc := range []struct {
		name string
		p    Profile
	}{
		{"empty", Profile{Version: ProfileVersion}},
		{"uniform default mix", uniformMixProfile(attrs, 50)},
	} {
		rep, err := Advise("t", designs, tc.p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.Drift != 0 {
			t.Errorf("%s: Drift = %v, want 0", tc.name, rep.Drift)
		}
		if rep.Drifted {
			t.Errorf("%s: flagged as drifted", tc.name)
		}
		if math.Abs(rep.Gain) > 1e-12 {
			t.Errorf("%s: Gain = %v, want 0 (current design already optimal)", tc.name, rep.Gain)
		}
		for i, a := range rep.Attrs {
			if !a.RecommendedBase.Equal(designs[i].Base) {
				t.Errorf("%s: attr %d recommended base %v != current %v",
					tc.name, i, a.RecommendedBase, designs[i].Base)
			}
		}
	}
}

// uniformMixProfile queries every attribute n times at the paper's
// default 2/3 range mix (2 range + 1 eq per 3 queries).
func uniformMixProfile(attrs []AttrInfo, n int64) Profile {
	p := Profile{Version: ProfileVersion}
	for _, ai := range attrs {
		p.Attrs = append(p.Attrs, AttrProfile{
			Name: ai.Name, Card: ai.Card, Range: 2 * n, Eq: n,
		})
	}
	return p
}

func TestAdviseErrors(t *testing.T) {
	if _, err := Advise("t", nil, Profile{}); err == nil {
		t.Error("no designs: want error")
	}
	designs := []AttrDesign{NewAttrDesign("a", 10, core.Base{4, 3}, core.RangeEncoded, "raw", "")}
	bad := Profile{Version: ProfileVersion, Attrs: []AttrProfile{{Name: "ghost", Card: 10, Eq: 1}}}
	if _, err := Advise("t", designs, bad); err == nil {
		t.Error("profile attribute outside the catalog: want error")
	}
}

// TestAdviseMetrics: each run updates the drift/gain gauges in the
// default registry (integer ppm / milliscans).
func TestAdviseMetrics(t *testing.T) {
	cards := []uint64{90, 25, 12}
	designs := uniformDesigns(t, cards, 6)
	attrs := make([]AttrInfo, len(designs))
	for i, d := range designs {
		attrs[i] = AttrInfo{Name: d.Name, Card: d.Card}
	}
	rep, err := Advise("t", designs, skewedProfile(attrs, 0, 80, 10))
	if err != nil {
		t.Fatal(err)
	}
	snap := telemetry.Default().Snapshot()
	if got := snap.Gauges["bix_advisor_drift_ppm"]; got != int64(math.Round(rep.Drift*1e6)) {
		t.Errorf("bix_advisor_drift_ppm = %d, want %d", got, int64(math.Round(rep.Drift*1e6)))
	}
	if got := snap.Gauges["bix_advisor_gain_milliscans"]; got != int64(math.Round(rep.Gain*1e3)) {
		t.Errorf("bix_advisor_gain_milliscans = %d, want %d", got, int64(math.Round(rep.Gain*1e3)))
	}
	if snap.Counters["bix_advisor_runs_total"] == 0 {
		t.Error("bix_advisor_runs_total not incremented")
	}
}

// TestDesignTimeNonRange: non-range encodings are priced by the exact
// enumerated model so mixed-encoding catalogs still get sane advice.
func TestDesignTimeNonRange(t *testing.T) {
	base := core.Base{5, 2}
	d := NewAttrDesign("a", 10, base, core.EqualityEncoded, "raw", "")
	if got, want := designTime(d, 1), cost.ExactTime(base, core.EqualityEncoded, 10); got != want {
		t.Errorf("equality designTime = %v, want %v", got, want)
	}
	r := NewAttrDesign("a", 10, base, core.RangeEncoded, "raw", "")
	if got, want := designTime(r, cost.DefaultRangeFraction), cost.TimeRange(base, 10); got != want {
		t.Errorf("range designTime at default mix = %v, want %v", got, want)
	}
}
