package workload

import (
	"fmt"
	"math"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/design"
	"bitmapindex/internal/telemetry"
)

// AttrDesign describes one attribute's current physical design, as
// recorded in the catalog descriptor: its encoding, base, storage codec
// and the table's row order. catalog.Table.Designs builds this.
type AttrDesign struct {
	Name     string    `json:"name"`
	Card     uint64    `json:"card"`
	Base     core.Base `json:"base"`
	Encoding string    `json:"encoding"`
	Codec    string    `json:"codec"`
	Reorder  string    `json:"reorder,omitempty"`

	enc core.Encoding
}

// NewAttrDesign fills an AttrDesign from typed fields.
func NewAttrDesign(name string, card uint64, base core.Base, enc core.Encoding, codec, reorder string) AttrDesign {
	return AttrDesign{Name: name, Card: card, Base: base.Clone(),
		Encoding: enc.String(), Codec: codec, Reorder: reorder, enc: enc}
}

// DriftThreshold is the total-variation distance from uniform at which a
// report flags the workload as drifted: above it, the uniform-allocation
// assumption misprices the workload enough to revisit the design.
const DriftThreshold = 0.05

// AttrAdvice is one attribute's row of a report: the observed demand,
// the current design and the recommended one, each priced in expected
// scans per query of that attribute's own predicates.
type AttrAdvice struct {
	Name      string  `json:"name"`
	Card      uint64  `json:"card"`
	Frequency float64 `json:"frequency"`  // observed fraction of queries
	RangeFrac float64 `json:"range_frac"` // observed range-class fraction

	CurrentBase      core.Base `json:"current_base"`
	CurrentEncoding  string    `json:"current_encoding"`
	CurrentCodec     string    `json:"current_codec"`
	CurrentSpace     int       `json:"current_space"`
	CurrentTime      float64   `json:"current_time"`
	RecommendedBase  core.Base `json:"recommended_base"`
	RecommendedSpace int       `json:"recommended_space"`
	RecommendedTime  float64   `json:"recommended_time"`
}

// Report compares the catalog's current design against the weighted
// recommendation under an observed profile.
type Report struct {
	Table        string  `json:"table,omitempty"`
	Reorder      string  `json:"reorder,omitempty"`
	TotalQueries int64   `json:"total_queries"`
	Budget       int     `json:"budget"` // current total stored bitmaps, reused as the recommendation's budget
	Drift        float64 `json:"drift"`
	Drifted      bool    `json:"drifted"`
	// Expected scans per query under the observed frequency vector.
	CurrentTime     float64 `json:"current_time"`
	RecommendedTime float64 `json:"recommended_time"`
	// Gain is CurrentTime - RecommendedTime: the price of the gap between
	// the design on disk and the design the observed workload wants.
	Gain  float64      `json:"gain"`
	Attrs []AttrAdvice `json:"attributes"`
}

// Advisor-level metrics: set on every Advise call so a scrape shows the
// live drift and the price of the current design gap. Gauges are integer
// valued, so the unit-less drift exports as parts per million and the
// expected-scan gap in milliscans per query.
var (
	advisorRuns = telemetry.Default().Counter("bix_advisor_runs_total",
		"Advisor evaluations.")
	advisorDrift = telemetry.Default().Gauge("bix_advisor_drift_ppm",
		"Workload drift from the uniform assumption (total variation distance, parts per million).")
	advisorGain = telemetry.Default().Gauge("bix_advisor_gain_milliscans",
		"Expected scans per query saved by the recommended design, in thousandths of a scan.")
)

// Advise prices the catalog's current design against the weighted
// optimum under the observed profile, holding the disk budget fixed at
// the space the current design already uses. The profile may be empty
// (uniform advice) but must validate against the designs' attribute set.
func Advise(table string, designs []AttrDesign, p Profile) (*Report, error) {
	if len(designs) == 0 {
		return nil, fmt.Errorf("workload: no attribute designs to advise on")
	}
	attrs := make([]AttrInfo, len(designs))
	byName := make(map[string]int, len(designs))
	for i, d := range designs {
		attrs[i] = AttrInfo{Name: d.Name, Card: d.Card}
		byName[d.Name] = i
	}
	if err := p.Validate(attrs); err != nil {
		return nil, err
	}
	// Align the profile with the design order; attributes the profile
	// does not mention stay at zero demand.
	aligned := Profile{Version: ProfileVersion, Attrs: make([]AttrProfile, len(designs))}
	for i, d := range designs {
		aligned.Attrs[i] = AttrProfile{Name: d.Name, Card: d.Card}
	}
	for _, ap := range p.Attrs {
		aligned.Attrs[byName[ap.Name]] = ap
	}

	rep := &Report{Table: table, TotalQueries: aligned.TotalQueries(), Drift: aligned.Drift()}
	rep.Drifted = rep.Drift > DriftThreshold
	for _, d := range designs {
		rep.Budget += cost.Space(d.Base, d.encoding())
		if d.Reorder != "" && d.Reorder != "none" {
			rep.Reorder = d.Reorder
		}
	}
	demands := aligned.Demands()
	weights := aligned.Weights()
	rec, err := design.AllocateBudgetWeighted(demands, rep.Budget)
	if err != nil {
		return nil, fmt.Errorf("workload: recommendation: %w", err)
	}
	for i, d := range designs {
		adv := AttrAdvice{
			Name:             d.Name,
			Card:             d.Card,
			Frequency:        weights[i],
			RangeFrac:        rangeFracOf(demands[i]),
			CurrentBase:      d.Base.Clone(),
			CurrentEncoding:  d.Encoding,
			CurrentCodec:     d.Codec,
			CurrentSpace:     cost.Space(d.Base, d.encoding()),
			CurrentTime:      designTime(d, demands[i].RangeFrac),
			RecommendedBase:  rec.Bases[i],
			RecommendedSpace: rec.Spaces[i],
			RecommendedTime:  rec.Times[i],
		}
		rep.CurrentTime += weights[i] * adv.CurrentTime
		rep.RecommendedTime += weights[i] * adv.RecommendedTime
		rep.Attrs = append(rep.Attrs, adv)
	}
	rep.Gain = rep.CurrentTime - rep.RecommendedTime
	advisorRuns.Inc()
	advisorDrift.Set(int64(math.Round(rep.Drift * 1e6)))
	advisorGain.Set(int64(math.Round(rep.Gain * 1e3)))
	return rep, nil
}

// encoding resolves the typed encoding, parsing the serialized name when
// the design was decoded from JSON rather than built via NewAttrDesign.
func (d AttrDesign) encoding() core.Encoding {
	if d.Encoding != "" {
		if e, err := core.ParseEncoding(d.Encoding); err == nil {
			return e
		}
	}
	return d.enc
}

// designTime prices one attribute's current design at its observed
// operator mix. Range encoding has per-class closed forms; other
// encodings are priced by exhaustive enumeration under the paper's
// default mix (their evaluators have no per-class model).
func designTime(d AttrDesign, rangeFrac float64) float64 {
	if enc := d.encoding(); enc != core.RangeEncoded {
		return cost.ExactTime(d.Base, enc, d.Card)
	}
	return cost.TimeRangeMix(d.Base, d.Card, rangeFrac)
}

func rangeFracOf(d design.AttrDemand) float64 {
	if d.RangeFrac >= 0 && d.RangeFrac <= 1 {
		return d.RangeFrac
	}
	return cost.DefaultRangeFraction
}
