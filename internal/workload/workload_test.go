package workload

import (
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/telemetry"
)

func testAttrs() []AttrInfo {
	return []AttrInfo{
		{Name: "region", Card: 90},
		{Name: "status", Card: 25},
		{Name: "tier", Card: 12},
	}
}

func TestObserveAndSnapshot(t *testing.T) {
	a := NewWithRegistry(telemetry.New(), testAttrs())
	a.Observe(Event{Attr: "region", Class: EqClass, Value: 45, Matches: 10, Rows: 100,
		Scans: 3, Bytes: 1024, NS: 5000, CacheHits: 2, CacheMisses: 1})
	a.Observe(Event{Attr: "region", Class: RangeClass, Value: 89, Matches: -1, Scans: 5})
	a.Observe(Event{Attr: "tier", Class: IntervalClass, Value: 0, Matches: 0, Rows: 10})

	p := a.Snapshot()
	if p.Version != ProfileVersion {
		t.Errorf("version = %d, want %d", p.Version, ProfileVersion)
	}
	region := p.Attrs[0]
	if region.Eq != 1 || region.Range != 1 || region.Interval != 0 {
		t.Errorf("region counts = %d/%d/%d, want 1/1/0", region.Eq, region.Range, region.Interval)
	}
	if region.Scans != 8 || region.BytesRead != 1024 || region.LatencyNS != 5000 {
		t.Errorf("region costs = %d/%d/%d", region.Scans, region.BytesRead, region.LatencyNS)
	}
	if region.CacheHits != 2 || region.CacheMisses != 1 {
		t.Errorf("region cache = %d/%d", region.CacheHits, region.CacheMisses)
	}
	// Value 45 of card 90 → bucket 5; value 89 of 90 → bucket 9.
	if region.Position[5] != 1 || region.Position[9] != 1 {
		t.Errorf("region position hist = %v", region.Position)
	}
	// 10/100 → bucket 1; the Matches: -1 event is skipped.
	if region.Selectivity[1] != 1 || sum(region.Selectivity) != 1 {
		t.Errorf("region selectivity hist = %v", region.Selectivity)
	}
	tier := p.Attrs[2]
	if tier.Interval != 1 {
		t.Errorf("tier interval count = %d, want 1", tier.Interval)
	}
	// Matches 0 of 10 rows is a real observation (bucket 0).
	if tier.Selectivity[0] != 1 {
		t.Errorf("tier selectivity hist = %v", tier.Selectivity)
	}
	if p.TotalQueries() != 3 {
		t.Errorf("TotalQueries = %d, want 3", p.TotalQueries())
	}
}

func sum(h []int64) int64 {
	var t int64
	for _, v := range h {
		t += v
	}
	return t
}

func TestObserveUnknownAttrDropped(t *testing.T) {
	a := NewWithRegistry(telemetry.New(), testAttrs())
	before := droppedTotal.Value()
	a.Observe(Event{Attr: "user_input_constant", Class: EqClass})
	if got := droppedTotal.Value(); got != before+1 {
		t.Errorf("droppedTotal = %d, want %d", got, before+1)
	}
	if a.Snapshot().TotalQueries() != 0 {
		t.Error("dropped event leaked into the snapshot")
	}
}

func TestClassOf(t *testing.T) {
	for _, op := range []core.Op{core.Lt, core.Le, core.Gt, core.Ge} {
		if ClassOf(op) != RangeClass {
			t.Errorf("ClassOf(%v) = %v, want range", op, ClassOf(op))
		}
	}
	for _, op := range []core.Op{core.Eq, core.Ne} {
		if ClassOf(op) != EqClass {
			t.Errorf("ClassOf(%v) = %v, want eq", op, ClassOf(op))
		}
	}
}

// TestObserveAllocFree pins the steady-state promise: once the attribute
// set is registered, recording an event allocates nothing.
func TestObserveAllocFree(t *testing.T) {
	a := NewWithRegistry(telemetry.New(), testAttrs())
	e := Event{Attr: "status", Class: RangeClass, Value: 12, Matches: 40, Rows: 100,
		Scans: 4, Bytes: 512, NS: 900, CacheHits: 1}
	if allocs := testing.AllocsPerRun(1000, func() { a.Observe(e) }); allocs != 0 {
		t.Errorf("Observe allocates %v per run, want 0", allocs)
	}
}

func TestAttrMetricsExported(t *testing.T) {
	reg := telemetry.New()
	a := NewWithRegistry(reg, testAttrs())
	a.Observe(Event{Attr: "region", Class: EqClass, Scans: 7, Bytes: 100})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`bix_attr_queries_total{attr="region",class="eq"} 1`,
		`bix_attr_scans_total{attr="region"} 7`,
		`bix_attr_bytes_read_total{attr="region"} 100`,
		`bix_attr_queries_total{attr="tier",class="interval"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestDuplicateAttrsCollapsed(t *testing.T) {
	a := NewWithRegistry(telemetry.New(), []AttrInfo{{Name: "x", Card: 4}, {Name: "x", Card: 9}})
	if got := a.Attrs(); len(got) != 1 || got[0].Card != 4 {
		t.Errorf("Attrs() = %v, want one entry with card 4", got)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	a := NewWithRegistry(telemetry.New(), testAttrs())
	for i := 0; i < 17; i++ {
		a.Observe(Event{Attr: "region", Class: RangeClass, Value: uint64(i * 5),
			Matches: i, Rows: 20, Scans: 2, Bytes: 64, NS: 10})
	}
	a.Observe(Event{Attr: "status", Class: EqClass, Value: 3, Matches: -1})
	want := a.Snapshot()

	path := filepath.Join(t.TempDir(), "profile.json")
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if err := got.Validate(a.Attrs()); err != nil {
		t.Fatalf("round-tripped profile fails validation: %v", err)
	}
}

// TestAddProfileRestart checks the serve restart path: replaying a saved
// snapshot makes the accumulator resume where the previous run stopped.
func TestAddProfileRestart(t *testing.T) {
	reg := telemetry.New()
	a := NewWithRegistry(reg, testAttrs())
	a.Observe(Event{Attr: "region", Class: EqClass, Value: 1, Matches: -1, Scans: 2})
	saved := a.Snapshot()

	b := NewWithRegistry(telemetry.New(), testAttrs())
	if err := b.AddProfile(saved); err != nil {
		t.Fatal(err)
	}
	b.Observe(Event{Attr: "region", Class: EqClass, Value: 1, Matches: -1, Scans: 2})
	got := b.Snapshot()
	if got.Attrs[0].Eq != 2 || got.Attrs[0].Scans != 4 {
		t.Errorf("after restart replay: eq=%d scans=%d, want 2/4", got.Attrs[0].Eq, got.Attrs[0].Scans)
	}

	bad := saved
	bad.Attrs = append([]AttrProfile{}, saved.Attrs...)
	bad.Attrs[0].Name = "nope"
	if err := b.AddProfile(bad); err == nil {
		t.Error("AddProfile accepted an unknown attribute")
	}
}

func TestValidateRejects(t *testing.T) {
	attrs := testAttrs()
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"unknown attribute", func(p *Profile) { p.Attrs[0].Name = "ghost" }},
		{"cardinality mismatch", func(p *Profile) { p.Attrs[0].Card = 91 }},
		{"duplicate attribute", func(p *Profile) { p.Attrs[1] = p.Attrs[0] }},
		{"negative eq", func(p *Profile) { p.Attrs[0].Eq = -1 }},
		{"negative scans", func(p *Profile) { p.Attrs[1].Scans = -5 }},
		{"negative latency", func(p *Profile) { p.Attrs[2].LatencyNS = -1 }},
		{"oversized hist", func(p *Profile) { p.Attrs[0].Selectivity = make([]int64, HistBuckets+1) }},
		{"negative hist bucket", func(p *Profile) { p.Attrs[0].Position = []int64{-1} }},
		{"future version", func(p *Profile) { p.Version = ProfileVersion + 1 }},
	}
	for _, c := range cases {
		p := NewWithRegistry(telemetry.New(), attrs).Snapshot()
		c.mut(&p)
		if err := p.Validate(attrs); err == nil {
			t.Errorf("%s: Validate accepted it", c.name)
		}
	}
	p := NewWithRegistry(telemetry.New(), attrs).Snapshot()
	if err := p.Validate(attrs); err != nil {
		t.Errorf("clean profile rejected: %v", err)
	}
}

func TestMergeAndOverflow(t *testing.T) {
	a := NewWithRegistry(telemetry.New(), testAttrs())
	a.Observe(Event{Attr: "region", Class: EqClass, Value: 1, Matches: 1, Rows: 2})
	p, q := a.Snapshot(), a.Snapshot()
	if err := p.Merge(q); err != nil {
		t.Fatal(err)
	}
	if p.Attrs[0].Eq != 2 || p.Attrs[0].Selectivity[5] != 2 {
		t.Errorf("merge: eq=%d sel=%v", p.Attrs[0].Eq, p.Attrs[0].Selectivity)
	}

	p.Attrs[0].Eq = 1<<63 - 1
	q.Attrs[0].Eq = 1
	if err := p.Merge(q); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("overflow merge: err = %v", err)
	}

	mismatched := q
	mismatched.Attrs = q.Attrs[:2]
	if err := p.Merge(mismatched); err == nil {
		t.Error("merge accepted mismatched attribute sets")
	}
}

// TestConcurrentObserveSnapshot hammers the accumulator from many
// goroutines while snapshotting; run under -race this is the data-race
// gate, and the final snapshot must account for every event exactly once.
func TestConcurrentObserveSnapshot(t *testing.T) {
	a := NewWithRegistry(telemetry.New(), testAttrs())
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			attrs := testAttrs()
			for i := 0; i < perWorker; i++ {
				ai := attrs[(w+i)%len(attrs)]
				a.Observe(Event{Attr: ai.Name, Class: OpClass(i % 3),
					Value: uint64(i) % ai.Card, Matches: i % 50, Rows: 50, Scans: 1})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			snap := a.Snapshot()
			if err := snap.Validate(a.Attrs()); err != nil {
				t.Errorf("mid-flight snapshot invalid: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	final := a.Snapshot()
	if got := final.TotalQueries(); got != workers*perWorker {
		t.Errorf("TotalQueries = %d, want %d", got, workers*perWorker)
	}
	var scans int64
	for _, ap := range final.Attrs {
		scans += ap.Scans
	}
	if scans != workers*perWorker {
		t.Errorf("total scans = %d, want %d", scans, workers*perWorker)
	}
}

func FuzzProfileDecode(f *testing.F) {
	a := NewWithRegistry(telemetry.New(), testAttrs())
	a.Observe(Event{Attr: "region", Class: RangeClass, Value: 10, Matches: 5, Rows: 10})
	good, err := a.Snapshot().marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"attributes":[{"name":"x","card":4,"eq":-1}]}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":1,"attributes":[{"name":"","card":4}]}`))
	f.Add([]byte(`{"version":1,"attributes":[{"name":"a","card":2},{"name":"a","card":2}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProfile(data)
		if err != nil {
			return
		}
		// Whatever decodes must be internally consistent: re-encoding and
		// re-decoding must succeed and all the decode invariants must hold.
		if p.Version > ProfileVersion {
			t.Fatalf("decoded unsupported version %d", p.Version)
		}
		seen := map[string]bool{}
		for _, ap := range p.Attrs {
			if ap.Name == "" {
				t.Fatal("decoded attribute with empty name")
			}
			if seen[ap.Name] {
				t.Fatalf("decoded duplicate attribute %q", ap.Name)
			}
			seen[ap.Name] = true
			if ap.Eq < 0 || ap.Range < 0 || ap.Interval < 0 || ap.Scans < 0 ||
				ap.BytesRead < 0 || ap.LatencyNS < 0 || ap.CacheHits < 0 || ap.CacheMisses < 0 {
				t.Fatalf("decoded negative count in %+v", ap)
			}
			if len(ap.Selectivity) > HistBuckets || len(ap.Position) > HistBuckets {
				t.Fatalf("decoded oversized histogram in %+v", ap)
			}
		}
		j, err := p.marshal()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if _, err := DecodeProfile(j); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}
