package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"bitmapindex/internal/design"
)

// ProfileVersion is bumped whenever the snapshot layout changes shape.
const ProfileVersion = 1

// AttrProfile is one attribute's accumulated statistics.
type AttrProfile struct {
	Name string `json:"name"`
	Card uint64 `json:"card"`
	// Query counts by operator class. An interval query counts once here
	// but as two one-sided evaluations in Demands.
	Eq       int64 `json:"eq"`
	Range    int64 `json:"range"`
	Interval int64 `json:"interval"`
	// Physical costs attributed to this attribute's predicates.
	Scans       int64 `json:"scans"`
	BytesRead   int64 `json:"bytes_read"`
	LatencyNS   int64 `json:"latency_ns"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Selectivity (matches/rows) and constant-position (value/card)
	// histograms: HistBuckets equal-width buckets over [0, 1].
	Selectivity []int64 `json:"selectivity_hist"`
	Position    []int64 `json:"position_hist"`
}

// Queries returns the attribute's total query count across classes.
func (ap AttrProfile) Queries() int64 { return ap.Eq + ap.Range + ap.Interval }

// evals returns the attribute's one-sided evaluation count: an interval
// query costs two one-sided range evaluations.
func (ap AttrProfile) evals() int64 { return ap.Eq + ap.Range + 2*ap.Interval }

// Profile is a serializable point-in-time workload snapshot.
type Profile struct {
	Version int           `json:"version"`
	Attrs   []AttrProfile `json:"attributes"`
}

// TotalQueries sums query counts across attributes.
func (p Profile) TotalQueries() int64 {
	var t int64
	for _, ap := range p.Attrs {
		t += ap.Queries()
	}
	return t
}

// Drift measures how far the observed per-attribute query frequencies
// diverge from the design layer's uniform assumption: the total variation
// distance between the observed frequency vector and uniform, in [0, 1].
// An empty profile (no queries) has zero drift.
func (p Profile) Drift() float64 {
	n := len(p.Attrs)
	total := p.TotalQueries()
	if n == 0 || total == 0 {
		return 0
	}
	var d float64
	for _, ap := range p.Attrs {
		d += math.Abs(float64(ap.Queries())/float64(total) - 1/float64(n))
	}
	return d / 2
}

// Demands converts the profile into the weighted allocator's input: one
// demand per attribute, weighted by its one-sided evaluation count, with
// the measured range fraction. A never-queried attribute keeps weight 0
// and the default operator mix; a fully idle profile degrades to uniform
// demands so advice under no data reproduces the paper's assumption.
func (p Profile) Demands() []design.AttrDemand {
	demands := make([]design.AttrDemand, len(p.Attrs))
	idle := p.TotalQueries() == 0
	for i, ap := range p.Attrs {
		d := design.AttrDemand{Card: ap.Card, RangeFrac: -1}
		if idle {
			d.Weight = 1
		} else if e := ap.evals(); e > 0 {
			d.Weight = float64(e)
			d.RangeFrac = float64(ap.Range+2*ap.Interval) / float64(e)
		}
		demands[i] = d
	}
	return demands
}

// Weights returns the normalized per-attribute query frequencies (summing
// to 1), uniform when the profile is empty.
func (p Profile) Weights() []float64 {
	w := make([]float64, len(p.Attrs))
	total := p.TotalQueries()
	if total == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return w
	}
	for i, ap := range p.Attrs {
		w[i] = float64(ap.Queries()) / float64(total)
	}
	return w
}

// Validate checks the profile against a catalog attribute set: every
// profile attribute must exist with the same cardinality, every count
// must be non-negative, and histograms must not exceed the bucket layout.
func (p Profile) Validate(attrs []AttrInfo) error {
	if p.Version > ProfileVersion {
		return fmt.Errorf("workload: profile version %d is newer than supported %d", p.Version, ProfileVersion)
	}
	cards := make(map[string]uint64, len(attrs))
	for _, ai := range attrs {
		cards[ai.Name] = ai.Card
	}
	seen := make(map[string]bool, len(p.Attrs))
	for _, ap := range p.Attrs {
		card, ok := cards[ap.Name]
		if !ok {
			return fmt.Errorf("workload: profile attribute %q is not in the catalog", ap.Name)
		}
		if seen[ap.Name] {
			return fmt.Errorf("workload: duplicate profile attribute %q", ap.Name)
		}
		seen[ap.Name] = true
		if ap.Card != card {
			return fmt.Errorf("workload: attribute %q has cardinality %d in the profile, %d in the catalog",
				ap.Name, ap.Card, card)
		}
		for _, c := range [...]struct {
			what string
			v    int64
		}{
			{"eq", ap.Eq}, {"range", ap.Range}, {"interval", ap.Interval},
			{"scans", ap.Scans}, {"bytes_read", ap.BytesRead}, {"latency_ns", ap.LatencyNS},
			{"cache_hits", ap.CacheHits}, {"cache_misses", ap.CacheMisses},
		} {
			if c.v < 0 {
				return fmt.Errorf("workload: attribute %q has negative %s count %d", ap.Name, c.what, c.v)
			}
		}
		if len(ap.Selectivity) > HistBuckets || len(ap.Position) > HistBuckets {
			return fmt.Errorf("workload: attribute %q has oversized histogram (%d/%d buckets, max %d)",
				ap.Name, len(ap.Selectivity), len(ap.Position), HistBuckets)
		}
		for _, b := range ap.Selectivity {
			if b < 0 {
				return fmt.Errorf("workload: attribute %q has negative selectivity bucket", ap.Name)
			}
		}
		for _, b := range ap.Position {
			if b < 0 {
				return fmt.Errorf("workload: attribute %q has negative position bucket", ap.Name)
			}
		}
	}
	return nil
}

// Merge adds o's counts into p. Both profiles must carry the same
// attribute set in the same order (snapshots of the same catalog).
// Counter overflow is an error, not a wraparound.
func (p *Profile) Merge(o Profile) error {
	if len(p.Attrs) != len(o.Attrs) {
		return fmt.Errorf("workload: merging profiles with %d and %d attributes", len(p.Attrs), len(o.Attrs))
	}
	for i := range p.Attrs {
		a, b := &p.Attrs[i], o.Attrs[i]
		if a.Name != b.Name || a.Card != b.Card {
			return fmt.Errorf("workload: merge mismatch at %d: %s/C=%d vs %s/C=%d",
				i, a.Name, a.Card, b.Name, b.Card)
		}
		for _, f := range [...]struct {
			dst *int64
			src int64
		}{
			{&a.Eq, b.Eq}, {&a.Range, b.Range}, {&a.Interval, b.Interval},
			{&a.Scans, b.Scans}, {&a.BytesRead, b.BytesRead}, {&a.LatencyNS, b.LatencyNS},
			{&a.CacheHits, b.CacheHits}, {&a.CacheMisses, b.CacheMisses},
		} {
			s, err := addInt64(*f.dst, f.src, a.Name)
			if err != nil {
				return err
			}
			*f.dst = s
		}
		var err error
		if a.Selectivity, err = mergeHist(a.Selectivity, b.Selectivity, a.Name); err != nil {
			return err
		}
		if a.Position, err = mergeHist(a.Position, b.Position, a.Name); err != nil {
			return err
		}
	}
	return nil
}

func addInt64(a, b int64, attr string) (int64, error) {
	if b < 0 || a < 0 {
		return 0, fmt.Errorf("workload: attribute %q: negative count in merge", attr)
	}
	if a > math.MaxInt64-b {
		return 0, fmt.Errorf("workload: attribute %q: counter overflow in merge", attr)
	}
	return a + b, nil
}

func mergeHist(dst, src []int64, attr string) ([]int64, error) {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		s, err := addInt64(dst[i], v, attr)
		if err != nil {
			return nil, err
		}
		dst[i] = s
	}
	return dst, nil
}

// Save writes the profile as indented JSON.
func (p Profile) Save(path string) error {
	j, err := p.marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, j, 0o644)
}

func (p Profile) marshal() ([]byte, error) {
	j, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return append(j, '\n'), nil
}

// LoadProfile reads a profile written by Save. The result is decoded but
// not validated against any catalog; call Validate before trusting it.
func LoadProfile(path string) (Profile, error) {
	j, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, fmt.Errorf("workload: %w", err)
	}
	return DecodeProfile(j)
}

// DecodeProfile parses a JSON profile, rejecting structurally invalid
// documents (the fuzz target): decode errors, unsupported versions and
// negative counts all fail here even without a catalog to check against.
func DecodeProfile(j []byte) (Profile, error) {
	var p Profile
	if err := json.Unmarshal(j, &p); err != nil {
		return Profile{}, fmt.Errorf("workload: bad profile: %w", err)
	}
	if p.Version > ProfileVersion {
		return Profile{}, fmt.Errorf("workload: profile version %d is newer than supported %d",
			p.Version, ProfileVersion)
	}
	// Structural checks that need no catalog: self-validate against the
	// profile's own attribute set.
	self := make([]AttrInfo, len(p.Attrs))
	for i, ap := range p.Attrs {
		if ap.Name == "" {
			return Profile{}, fmt.Errorf("workload: profile attribute %d has no name", i)
		}
		self[i] = AttrInfo{Name: ap.Name, Card: ap.Card}
	}
	if err := p.Validate(self); err != nil {
		return Profile{}, err
	}
	return p, nil
}
