// Package workload is the always-on per-attribute access accountant: a
// bounded, atomic accumulator that records which attributes a live query
// stream actually touches, with which operators and constants, and at
// what physical cost. It is the measured replacement for the design
// layer's "every attribute is queried equally often" assumption — its
// snapshots feed design.AllocateBudgetWeighted and the advisor compares
// the catalog's current physical design against the recommendation under
// the observed profile.
//
// The accumulator is fed from the same seams the flight recorder taps:
// catalog.Table.Query (one event per predicate), the engine's
// bitmap-merge plans (serial and segmented, via SelectOptions.Workload)
// and bixstore serve's handlers. The attribute set is fixed at
// construction (it comes from the catalog), so the accumulator — and the
// attribute-labeled bix_attr_* metric families it pre-registers — have
// statically bounded cardinality: events for unknown attributes are
// counted in bix_workload_dropped_total and otherwise ignored, never
// registered.
//
// Steady-state updates are a handful of atomic adds on pre-resolved
// counters: no locks, no allocation (enforced by an AllocsPerRun test and
// the //bix:hotpath directive).
package workload

import (
	"sync/atomic"

	"bitmapindex/internal/core"
	"bitmapindex/internal/telemetry"
)

// OpClass buckets operators the way the cost model prices them.
type OpClass uint8

const (
	// EqClass is an equality predicate (=, !=): one digit-equality chain.
	EqClass OpClass = iota
	// RangeClass is a one-sided range predicate (<, <=, >, >=).
	RangeClass
	// IntervalClass is a two-sided interval (between): evaluated as two
	// one-sided range predicates, and weighted as such by Demands.
	IntervalClass

	numClasses
)

// String returns the class's metric label value.
func (c OpClass) String() string {
	switch c {
	case EqClass:
		return "eq"
	case RangeClass:
		return "range"
	default:
		return "interval"
	}
}

// ClassOf maps an operator to its class. Interval queries have no single
// operator; callers evaluating a between observe IntervalClass directly.
func ClassOf(op core.Op) OpClass {
	if op.IsRange() {
		return RangeClass
	}
	return EqClass
}

// HistBuckets is the resolution of the per-attribute selectivity and
// constant-position histograms: equal-width buckets over [0, 1].
const HistBuckets = 10

// Event is one observed predicate evaluation against one attribute.
type Event struct {
	// Attr is the catalog attribute name.
	Attr string
	// Class is the operator class.
	Class OpClass
	// Value is the query constant in rank space and Card the attribute
	// cardinality; together they place the constant-position bucket
	// (Value/Card). Card 0 means the accumulator's registered cardinality.
	Value uint64
	Card  uint64
	// Matches/Rows is the observed selectivity. A negative Matches means
	// the caller did not count the result; the selectivity histogram is
	// then skipped.
	Matches int
	Rows    int
	// Physical costs of this predicate alone.
	Scans       int
	Bytes       int64
	NS          int64
	CacheHits   int
	CacheMisses int
}

// attrState is one attribute's accounting: internal atomics for cheap
// snapshots plus the pre-registered attribute-labeled counters.
type attrState struct {
	name string
	card uint64

	queries     [numClasses]atomic.Int64
	scans       atomic.Int64
	bytes       atomic.Int64
	latencyNS   atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	sel         [HistBuckets]atomic.Int64
	pos         [HistBuckets]atomic.Int64

	queriesC [numClasses]*telemetry.Counter
	scansC   *telemetry.Counter
	bytesC   *telemetry.Counter
	latencyC *telemetry.Counter
	hitsC    *telemetry.Counter
	missesC  *telemetry.Counter
}

// droppedTotal counts events for attributes outside the registered set —
// the safety valve that keeps the metric surface bounded.
var droppedTotal = telemetry.Default().Counter("bix_workload_dropped_total",
	"Workload events dropped because their attribute is not in the accumulator's set.")

// AttrInfo names one attribute of the accumulator's fixed set.
type AttrInfo struct {
	Name string
	Card uint64
}

// Accumulator tracks per-attribute access statistics for a fixed
// attribute set. All methods are safe for concurrent use.
type Accumulator struct {
	attrs  []*attrState
	byName map[string]int
}

// New builds an accumulator over the catalog's attribute set, registering
// the bix_attr_* metric families in the default telemetry registry.
func New(attrs []AttrInfo) *Accumulator {
	return NewWithRegistry(telemetry.Default(), attrs)
}

// NewWithRegistry is New against a specific registry (tests isolate their
// metric state this way).
//
// The attribute label values are not compile-time constants, which the
// telemetry-labels analyzer normally rejects: this constructor is the
// audited bounded-cardinality seam — labels derive only from the attrs
// parameter, whose entries come from a catalog descriptor, never from
// query text — and carries the directive saying so.
//
//bix:attrlabel (label values are catalog attribute names; the set is fixed at construction)
func NewWithRegistry(reg *telemetry.Registry, attrs []AttrInfo) *Accumulator {
	a := &Accumulator{byName: make(map[string]int, len(attrs))}
	for _, ai := range attrs {
		if _, dup := a.byName[ai.Name]; dup {
			continue
		}
		st := &attrState{name: ai.Name, card: ai.Card}
		attr := telemetry.Label{Name: "attr", Value: ai.Name}
		for c := OpClass(0); c < numClasses; c++ {
			st.queriesC[c] = reg.Counter("bix_attr_queries_total",
				"Predicate evaluations, by attribute and operator class.",
				attr, telemetry.Label{Name: "class", Value: c.String()})
		}
		st.scansC = reg.Counter("bix_attr_scans_total",
			"Stored bitmaps read, by attribute.", attr)
		st.bytesC = reg.Counter("bix_attr_bytes_read_total",
			"On-disk bytes read, by attribute.", attr)
		st.latencyC = reg.Counter("bix_attr_latency_ns_total",
			"Nanoseconds spent evaluating predicates, by attribute.", attr)
		st.hitsC = reg.Counter("bix_attr_cache_hits_total",
			"Bitmap pool hits, by attribute.", attr)
		st.missesC = reg.Counter("bix_attr_cache_misses_total",
			"Bitmap pool misses, by attribute.", attr)
		a.byName[ai.Name] = len(a.attrs)
		a.attrs = append(a.attrs, st)
	}
	return a
}

// Attrs returns the registered attribute set in registration order.
func (a *Accumulator) Attrs() []AttrInfo {
	out := make([]AttrInfo, len(a.attrs))
	for i, st := range a.attrs {
		out[i] = AttrInfo{Name: st.name, Card: st.card}
	}
	return out
}

// Observe records one predicate evaluation. Events for attributes outside
// the registered set are dropped (and counted). The steady-state path is
// allocation-free.
//
//bix:hotpath
func (a *Accumulator) Observe(e Event) {
	i, ok := a.byName[e.Attr]
	if !ok {
		droppedTotal.Inc()
		return
	}
	st := a.attrs[i]
	cls := e.Class
	if cls >= numClasses {
		cls = RangeClass
	}
	st.queries[cls].Add(1)
	st.queriesC[cls].Inc()
	if e.Scans != 0 {
		st.scans.Add(int64(e.Scans))
		st.scansC.Add(int64(e.Scans))
	}
	if e.Bytes != 0 {
		st.bytes.Add(e.Bytes)
		st.bytesC.Add(e.Bytes)
	}
	if e.NS != 0 {
		st.latencyNS.Add(e.NS)
		st.latencyC.Add(e.NS)
	}
	if e.CacheHits != 0 {
		st.cacheHits.Add(int64(e.CacheHits))
		st.hitsC.Add(int64(e.CacheHits))
	}
	if e.CacheMisses != 0 {
		st.cacheMisses.Add(int64(e.CacheMisses))
		st.missesC.Add(int64(e.CacheMisses))
	}
	card := e.Card
	if card == 0 {
		card = st.card
	}
	if card > 0 {
		st.pos[bucket(float64(e.Value), float64(card))].Add(1)
	}
	if e.Matches >= 0 && e.Rows > 0 {
		st.sel[bucket(float64(e.Matches), float64(e.Rows))].Add(1)
	}
}

// bucket maps v/total in [0, 1] to one of HistBuckets equal-width
// buckets, clamping out-of-range ratios into the edge buckets.
func bucket(v, total float64) int {
	i := int(v / total * HistBuckets)
	if i < 0 {
		return 0
	}
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// Snapshot returns a consistent-enough point-in-time profile: each field
// is read atomically (concurrent Observes may land between field reads,
// which is fine for design advice).
func (a *Accumulator) Snapshot() Profile {
	p := Profile{Version: ProfileVersion, Attrs: make([]AttrProfile, len(a.attrs))}
	for i, st := range a.attrs {
		ap := AttrProfile{
			Name:        st.name,
			Card:        st.card,
			Eq:          st.queries[EqClass].Load(),
			Range:       st.queries[RangeClass].Load(),
			Interval:    st.queries[IntervalClass].Load(),
			Scans:       st.scans.Load(),
			BytesRead:   st.bytes.Load(),
			LatencyNS:   st.latencyNS.Load(),
			CacheHits:   st.cacheHits.Load(),
			CacheMisses: st.cacheMisses.Load(),
			Selectivity: make([]int64, HistBuckets),
			Position:    make([]int64, HistBuckets),
		}
		for b := 0; b < HistBuckets; b++ {
			ap.Selectivity[b] = st.sel[b].Load()
			ap.Position[b] = st.pos[b].Load()
		}
		p.Attrs[i] = ap
	}
	return p
}

// AddProfile replays a saved profile into the accumulator — the restart
// path: serve loads the previous run's snapshot so advice does not start
// from a cold uniform assumption. The profile must validate against the
// accumulator's attribute set.
func (a *Accumulator) AddProfile(p Profile) error {
	if err := p.Validate(a.Attrs()); err != nil {
		return err
	}
	for _, ap := range p.Attrs {
		st := a.attrs[a.byName[ap.Name]]
		st.queries[EqClass].Add(ap.Eq)
		st.queries[RangeClass].Add(ap.Range)
		st.queries[IntervalClass].Add(ap.Interval)
		st.queriesC[EqClass].Add(ap.Eq)
		st.queriesC[RangeClass].Add(ap.Range)
		st.queriesC[IntervalClass].Add(ap.Interval)
		st.scans.Add(ap.Scans)
		st.scansC.Add(ap.Scans)
		st.bytes.Add(ap.BytesRead)
		st.bytesC.Add(ap.BytesRead)
		st.latencyNS.Add(ap.LatencyNS)
		st.latencyC.Add(ap.LatencyNS)
		st.cacheHits.Add(ap.CacheHits)
		st.hitsC.Add(ap.CacheHits)
		st.cacheMisses.Add(ap.CacheMisses)
		st.missesC.Add(ap.CacheMisses)
		for b := 0; b < HistBuckets && b < len(ap.Selectivity); b++ {
			st.sel[b].Add(ap.Selectivity[b])
		}
		for b := 0; b < HistBuckets && b < len(ap.Position); b++ {
			st.pos[b].Add(ap.Position[b])
		}
	}
	return nil
}
