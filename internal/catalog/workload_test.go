package catalog

import (
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/engine"
)

// TestQueryFeedsWorkload: Table.Query feeds the always-on accumulator one
// event per predicate, with scans and selectivity attributed.
func TestQueryFeedsWorkload(t *testing.T) {
	rel := buildRelation(t, 2000, 5)
	tbl, err := Create(t.TempDir(), rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := tbl.Query([]engine.Pred{{Col: "quantity", Op: core.Le, Val: 10}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Query([]engine.Pred{
		{Col: "quantity", Op: core.Gt, Val: 25},
		{Col: "price", Op: core.Eq, Val: 35},
	}, nil); err != nil {
		t.Fatal(err)
	}

	p := tbl.Workload().Snapshot()
	if got := p.Attrs[0]; got.Name != "quantity" || got.Range != 10 || got.Eq != 0 {
		t.Errorf("quantity profile = %s %d range / %d eq, want 10/0", got.Name, got.Range, got.Eq)
	}
	if got := p.Attrs[1]; got.Name != "price" || got.Eq != 1 {
		t.Errorf("price profile = %s eq=%d, want 1", got.Name, got.Eq)
	}
	if p.Attrs[0].Scans == 0 {
		t.Error("no scans attributed to quantity")
	}
	var sel int64
	for _, b := range p.Attrs[0].Selectivity {
		sel += b
	}
	if sel != 10 {
		t.Errorf("quantity selectivity observations = %d, want 10", sel)
	}
	if err := p.Validate(tbl.Workload().Attrs()); err != nil {
		t.Errorf("live profile fails validation: %v", err)
	}

	// The profile is skewed 10:1 toward quantity; the advisor must flag
	// drift and recommend within the current budget.
	rep, err := tbl.Advise()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drifted || rep.Drift == 0 {
		t.Errorf("drift = %v (flagged %v), want flagged non-zero", rep.Drift, rep.Drifted)
	}
	if rep.Gain < 0 {
		t.Errorf("gain = %v, want >= 0", rep.Gain)
	}
	recSpace := 0
	for _, a := range rep.Attrs {
		recSpace += a.RecommendedSpace
	}
	if recSpace > rep.Budget {
		t.Errorf("recommendation overruns budget: %d > %d", recSpace, rep.Budget)
	}
}

// TestDesigns: the design descriptors mirror what Create stored.
func TestDesigns(t *testing.T) {
	rel := buildRelation(t, 500, 3)
	tbl, err := Create(t.TempDir(), rel, Options{Encoding: core.EqualityEncoded})
	if err != nil {
		t.Fatal(err)
	}
	ds := tbl.Designs()
	if len(ds) != 2 {
		t.Fatalf("Designs() returned %d entries", len(ds))
	}
	for _, d := range ds {
		if d.Encoding != "equality" {
			t.Errorf("%s encoding = %q, want equality", d.Name, d.Encoding)
		}
		if d.Codec != "raw" {
			t.Errorf("%s codec = %q, want raw", d.Name, d.Codec)
		}
		a, err := tbl.Attr(d.Name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Card != a.Dict().Card() {
			t.Errorf("%s card = %d, want %d", d.Name, d.Card, a.Dict().Card())
		}
		if !d.Base.Equal(a.Store().Index().Base()) {
			t.Errorf("%s base = %v, want %v", d.Name, d.Base, a.Store().Index().Base())
		}
	}
}
