package catalog

import (
	"math/rand"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/engine"
	"bitmapindex/internal/storage"
)

func buildRelation(t *testing.T, n int, seed int64) *engine.Relation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	qty := make([]int64, n)
	price := make([]int64, n)
	for i := 0; i < n; i++ {
		qty[i] = int64(r.Intn(50) + 1)
		price[i] = int64(r.Intn(300)) * 5 // non-consecutive raw values
	}
	rel := engine.NewRelation("lineitem")
	if _, err := rel.AddInt64("quantity", qty); err != nil {
		t.Fatal(err)
	}
	if _, err := rel.AddInt64("price", price); err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestCreateOpenQuery(t *testing.T) {
	rel := buildRelation(t, 2000, 5)
	for _, opts := range []Options{
		{},
		{Store: storage.Options{Scheme: storage.ComponentLevel, Compress: true}},
		{Encoding: core.IntervalEncoded},
	} {
		dir := t.TempDir()
		tbl, err := Create(dir, rel, opts)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Name() != "lineitem" || tbl.Rows() != 2000 {
			t.Fatalf("descriptor wrong: %s %d", tbl.Name(), tbl.Rows())
		}
		if got := tbl.Attributes(); len(got) != 2 || got[0] != "quantity" || got[1] != "price" {
			t.Fatalf("attributes = %v", got)
		}
		// Reopen and compare against the reference plan on the relation.
		tbl2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		queries := [][]engine.Pred{
			{{Col: "quantity", Op: core.Le, Val: 10}},
			{{Col: "quantity", Op: core.Gt, Val: 25}, {Col: "price", Op: core.Lt, Val: 700}},
			{{Col: "price", Op: core.Eq, Val: 35}},
			{{Col: "price", Op: core.Eq, Val: 37}}, // absent raw value
			{{Col: "quantity", Op: core.Ge, Val: 1}, {Col: "price", Op: core.Ne, Val: 0}},
		}
		for qi, preds := range queries {
			want, _, err := rel.Select(preds, engine.FullScan)
			if err != nil {
				t.Fatal(err)
			}
			var m storage.Metrics
			got, err := tbl2.Query(preds, &m)
			if err != nil {
				t.Fatalf("query %d: %v", qi, err)
			}
			if !got.Equal(want) {
				t.Fatalf("opts %v query %d: catalog result differs from full scan", opts, qi)
			}
			n, err := tbl2.Count(preds, nil)
			if err != nil || n != want.Count() {
				t.Fatalf("Count = %d, want %d (err %v)", n, want.Count(), err)
			}
		}
	}
}

func TestAttrAccessors(t *testing.T) {
	rel := buildRelation(t, 500, 6)
	dir := t.TempDir()
	tbl, err := Create(dir, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tbl.Attr("price")
	if err != nil {
		t.Fatal(err)
	}
	if a.Dict().Card() == 0 || a.Store() == nil {
		t.Fatal("attribute accessors broken")
	}
	if _, err := tbl.Attr("nope"); err == nil {
		t.Fatal("missing attribute must fail")
	}
	if !Exists(dir) || Exists(t.TempDir()) {
		t.Fatal("Exists wrong")
	}
}

func TestCatalogErrors(t *testing.T) {
	if _, err := Create(t.TempDir(), engine.NewRelation("empty"), Options{}); err == nil {
		t.Fatal("empty relation must fail")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("missing descriptor must fail")
	}
	rel := buildRelation(t, 100, 7)
	dir := t.TempDir()
	tbl, err := Create(dir, rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Query(nil, nil); err == nil {
		t.Fatal("empty predicates must fail")
	}
	if _, err := tbl.Query([]engine.Pred{{Col: "zzz", Op: core.Eq, Val: 1}}, nil); err == nil {
		t.Fatal("unknown attribute must fail")
	}
}
