// Package catalog manages a persistent table of bitmap indexes: one
// on-disk index per attribute plus the value dictionaries needed to
// translate raw predicates into rank space. It is the multiple-index
// organization the paper motivates for data warehouses ("the database to
// be fully inverted" in Sybase IQ's terms), with a conjunctive query
// entry point evaluated entirely against the stored indexes.
//
// Layout:
//
//	dir/table.json   descriptor: rows, attribute list, dictionaries
//	dir/<attr>/      one storage.Save output per attribute
package catalog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/core"
	"bitmapindex/internal/design"
	"bitmapindex/internal/engine"
	"bitmapindex/internal/reorder"
	"bitmapindex/internal/storage"
	"bitmapindex/internal/workload"
)

const (
	tableFile = "table.json"
	permFile  = "perm.bin"
)

// tableMeta is the serialized descriptor.
type tableMeta struct {
	Version int        `json:"version"`
	Name    string     `json:"name"`
	Rows    int        `json:"rows"`
	Attrs   []attrMeta `json:"attributes"`
	// Reorder names the row sort applied before bitmap construction
	// ("none", "lex", "gray"). When not "none", perm.bin holds the row
	// permutation (8 bytes little-endian per row, perm[newPos] = origRow)
	// and PermChecksum its CRC-32, so stored bitmaps — built over sorted
	// rows — can be mapped back to original row ids at query time.
	Reorder      string `json:"reorder,omitempty"`
	PermChecksum uint32 `json:"perm_checksum,omitempty"`
}

type attrMeta struct {
	Name string `json:"name"`
	Dir  string `json:"dir"`
	// Dict holds the sorted distinct raw values; rank i maps to Dict[i].
	Dict []int64 `json:"dictionary"`
}

// Options configures table creation.
type Options struct {
	// Store selects the physical layout of every attribute index; zero
	// value means uncompressed bitmap-level storage.
	Store storage.Options
	// BaseFor picks the index design per attribute cardinality; nil means
	// the knee design.
	BaseFor func(card uint64) (core.Base, error)
	// Encoding for every attribute index; default RangeEncoded.
	Encoding core.Encoding
	// Reorder sorts rows by their attribute-rank tuples (in column order)
	// before building the bitmaps, multiplying run-length compression
	// (arXiv:0901.3751). Results are transparently mapped back to
	// original row ids by Query.
	Reorder reorder.Order
}

// Table is an open catalog of attribute indexes.
type Table struct {
	dir   string
	meta  tableMeta
	attrs map[string]*Attr
	// perm is the build-time row permutation (perm[newPos] = origRow),
	// nil when rows were not reordered. Stored bitmaps are positioned in
	// sorted row space; Query maps results back through it.
	perm []int
	// wl is the always-on per-attribute access accountant; Query feeds it
	// one event per predicate.
	wl *workload.Accumulator
}

// Attr is one open attribute: its dictionary and its on-disk index.
type Attr struct {
	Name  string
	dict  *engine.Dict
	store *storage.Store
}

// Dict returns the attribute's value dictionary.
func (a *Attr) Dict() *engine.Dict { return a.dict }

// Store returns the attribute's on-disk index.
func (a *Attr) Store() *storage.Store { return a.store }

// Create builds and persists one bitmap index per relation column. The
// relation's columns must already be loaded (RID/bitmap indexes on the
// relation itself are not required).
func Create(dir string, rel *engine.Relation, opts Options) (*Table, error) {
	if rel.Rows() == 0 {
		return nil, fmt.Errorf("catalog: empty relation")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	baseFor := opts.BaseFor
	if baseFor == nil {
		baseFor = design.Knee
	}
	meta := tableMeta{Version: 1, Name: rel.Name, Rows: rel.Rows(), Reorder: opts.Reorder.String()}
	var perm []int
	if opts.Reorder != reorder.None {
		rankCols := make([][]uint64, 0, len(rel.ColumnNames()))
		for _, name := range rel.ColumnNames() {
			col, err := rel.Column(name)
			if err != nil {
				return nil, err
			}
			rankCols = append(rankCols, col.Ranks())
		}
		perm = reorder.Permutation(opts.Reorder, rankCols)
		pb := make([]byte, 8*len(perm))
		for i, p := range perm {
			binary.LittleEndian.PutUint64(pb[8*i:], uint64(p))
		}
		meta.PermChecksum = crc32.ChecksumIEEE(pb)
		if err := os.WriteFile(filepath.Join(dir, permFile), pb, 0o644); err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
	}
	for _, name := range rel.ColumnNames() {
		col, err := rel.Column(name)
		if err != nil {
			return nil, err
		}
		base, err := baseFor(col.Card())
		if err != nil {
			return nil, fmt.Errorf("catalog: attribute %q: %w", name, err)
		}
		ranks := col.Ranks()
		if perm != nil {
			ranks = reorder.Apply(perm, ranks)
		}
		ix, err := core.Build(ranks, col.Card(), base, opts.Encoding, nil)
		if err != nil {
			return nil, fmt.Errorf("catalog: attribute %q: %w", name, err)
		}
		sub := fmt.Sprintf("attr_%03d", len(meta.Attrs))
		if _, err := storage.Save(ix, filepath.Join(dir, sub), opts.Store); err != nil {
			return nil, fmt.Errorf("catalog: attribute %q: %w", name, err)
		}
		meta.Attrs = append(meta.Attrs, attrMeta{Name: name, Dir: sub, Dict: col.Dict().Values()})
	}
	mj, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, tableFile), mj, 0o644); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	return Open(dir)
}

// Open loads a table created by Create.
func Open(dir string) (*Table, error) {
	mj, err := os.ReadFile(filepath.Join(dir, tableFile))
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	var meta tableMeta
	if err := json.Unmarshal(mj, &meta); err != nil {
		return nil, fmt.Errorf("catalog: bad %s: %w", tableFile, err)
	}
	t := &Table{dir: dir, meta: meta, attrs: make(map[string]*Attr, len(meta.Attrs))}
	if ord, err := reorder.ParseOrder(meta.Reorder); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	} else if ord != reorder.None {
		pb, err := os.ReadFile(filepath.Join(dir, permFile))
		if err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
		if got := crc32.ChecksumIEEE(pb); got != meta.PermChecksum {
			return nil, fmt.Errorf("catalog: %s checksum mismatch (crc %08x, want %08x)",
				permFile, got, meta.PermChecksum)
		}
		if len(pb) != 8*meta.Rows {
			return nil, fmt.Errorf("catalog: %s holds %d bytes, want %d", permFile, len(pb), 8*meta.Rows)
		}
		perm := make([]int, meta.Rows)
		for i := range perm {
			perm[i] = int(binary.LittleEndian.Uint64(pb[8*i:]))
		}
		if err := reorder.Validate(perm, meta.Rows); err != nil {
			return nil, fmt.Errorf("catalog: %s: %w", permFile, err)
		}
		t.perm = perm
	}
	for _, am := range meta.Attrs {
		dict, err := engine.DictFromValues(am.Dict)
		if err != nil {
			return nil, fmt.Errorf("catalog: attribute %q: %w", am.Name, err)
		}
		st, err := storage.Open(filepath.Join(dir, am.Dir))
		if err != nil {
			return nil, fmt.Errorf("catalog: attribute %q: %w", am.Name, err)
		}
		if st.Index().Rows() != meta.Rows {
			return nil, fmt.Errorf("catalog: attribute %q has %d rows, table has %d",
				am.Name, st.Index().Rows(), meta.Rows)
		}
		t.attrs[am.Name] = &Attr{Name: am.Name, dict: dict, store: st}
	}
	infos := make([]workload.AttrInfo, len(meta.Attrs))
	for i, am := range meta.Attrs {
		infos[i] = workload.AttrInfo{Name: am.Name, Card: t.attrs[am.Name].dict.Card()}
	}
	t.wl = workload.New(infos)
	return t, nil
}

// Name returns the relation name.
func (t *Table) Name() string { return t.meta.Name }

// Rows returns the relation cardinality.
func (t *Table) Rows() int { return t.meta.Rows }

// Reorder returns the row sort order the indexes were built under.
func (t *Table) Reorder() reorder.Order {
	ord, _ := reorder.ParseOrder(t.meta.Reorder)
	return ord
}

// Permutation returns the build-time row permutation (perm[sortedPos] =
// originalRow), or nil when rows were not reordered. Callers evaluating
// directly against an Attr's Store get bitmaps in sorted row space and
// must map them through this (reorder.MapBack) to reach original row
// ids; Table.Query does so automatically.
func (t *Table) Permutation() []int { return t.perm }

// Attributes returns the attribute names in creation order.
func (t *Table) Attributes() []string {
	out := make([]string, len(t.meta.Attrs))
	for i, am := range t.meta.Attrs {
		out[i] = am.Name
	}
	return out
}

// Attr returns the named attribute.
func (t *Table) Attr(name string) (*Attr, error) {
	a, ok := t.attrs[name]
	if !ok {
		return nil, fmt.Errorf("catalog: table %s has no attribute %q", t.meta.Name, name)
	}
	return a, nil
}

// Query evaluates a conjunction of raw-value predicates entirely against
// the stored indexes (plan P3 with bitmap indexes) and returns the
// qualifying record bitmap. Physical costs accumulate into m when
// non-nil.
func (t *Table) Query(preds []engine.Pred, m *storage.Metrics) (*bitvec.Vector, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("catalog: empty predicate list")
	}
	// The workload accountant needs per-predicate scan/byte deltas even
	// when the caller does not ask for metrics.
	if m == nil {
		m = &storage.Metrics{}
	}
	var out *bitvec.Vector
	for _, p := range preds {
		a, err := t.Attr(p.Col)
		if err != nil {
			return nil, err
		}
		rop, rank, all, none := a.dict.Translate(p.Op, p.Val)
		scans, bytes := m.Stats.Scans, m.BytesRead
		start := time.Now()
		var res *bitvec.Vector
		cls := workload.ClassOf(p.Op)
		switch {
		case none:
			res = bitvec.New(t.meta.Rows)
		case all:
			res = bitvec.NewOnes(t.meta.Rows)
		default:
			cls = workload.ClassOf(rop)
			res, err = a.store.Eval(rop, rank, m)
			if err != nil {
				return nil, fmt.Errorf("catalog: attribute %q: %w", p.Col, err)
			}
		}
		t.wl.Observe(workload.Event{
			Attr:    p.Col,
			Class:   cls,
			Value:   rank,
			Matches: res.Count(),
			Rows:    t.meta.Rows,
			Scans:   m.Stats.Scans - scans,
			Bytes:   m.BytesRead - bytes,
			NS:      time.Since(start).Nanoseconds(),
		})
		if out == nil {
			out = res
		} else {
			out.And(res)
		}
	}
	// The conjunction is ANDed in sorted row space (cheaper: one map-back
	// per query, not per predicate) and translated to original row ids
	// only at the end.
	if t.perm != nil {
		out = reorder.MapBack(t.perm, out)
	}
	return out, nil
}

// Count returns the number of rows matching the conjunction.
func (t *Table) Count(preds []engine.Pred, m *storage.Metrics) (int, error) {
	b, err := t.Query(preds, m)
	if err != nil {
		return 0, err
	}
	return b.Count(), nil
}

// Workload returns the table's access accountant. It is always on; Query
// feeds it one event per predicate.
func (t *Table) Workload() *workload.Accumulator { return t.wl }

// Designs describes the current physical design of every attribute in
// creation order — the advisor's "what is on disk" input.
func (t *Table) Designs() []workload.AttrDesign {
	out := make([]workload.AttrDesign, len(t.meta.Attrs))
	for i, am := range t.meta.Attrs {
		a := t.attrs[am.Name]
		ix := a.store.Index()
		out[i] = workload.NewAttrDesign(am.Name, a.dict.Card(), ix.Base(),
			ix.Encoding(), a.store.Options().Codec.String(), t.meta.Reorder)
	}
	return out
}

// Advise compares the table's current design against the weighted
// recommendation under the accumulated workload profile.
func (t *Table) Advise() (*workload.Report, error) {
	return workload.Advise(t.meta.Name, t.Designs(), t.wl.Snapshot())
}

// Exists reports whether dir holds a table descriptor.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, tableFile))
	return err == nil
}
