package catalog

import (
	"os"
	"path/filepath"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/engine"
	"bitmapindex/internal/reorder"
	"bitmapindex/internal/storage"
)

// TestReorderedTableAnswersMatch creates the same relation with every
// combination of sort order and codec and checks Query answers in
// original row ids, identical to the unreordered table.
func TestReorderedTableAnswersMatch(t *testing.T) {
	rel := buildRelation(t, 1500, 17)
	plain, err := Create(t.TempDir(), rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]engine.Pred{
		{{Col: "quantity", Op: core.Le, Val: 10}},
		{{Col: "quantity", Op: core.Gt, Val: 25}, {Col: "price", Op: core.Lt, Val: 700}},
		{{Col: "price", Op: core.Eq, Val: 35}},
		{{Col: "quantity", Op: core.Ge, Val: 1}, {Col: "price", Op: core.Ne, Val: 0}},
	}
	for _, ord := range []reorder.Order{reorder.Lex, reorder.Gray} {
		for _, codec := range []storage.Codec{storage.CodecRaw, storage.CodecWAH, storage.CodecRoaring} {
			dir := t.TempDir()
			if _, err := Create(dir, rel, Options{
				Store:   storage.Options{Scheme: storage.BitmapLevel, Codec: codec},
				Reorder: ord,
			}); err != nil {
				t.Fatalf("%v/%v: %v", ord, codec, err)
			}
			tbl, err := Open(dir)
			if err != nil {
				t.Fatalf("%v/%v: %v", ord, codec, err)
			}
			if tbl.Reorder() != ord {
				t.Fatalf("%v/%v: Reorder() = %v", ord, codec, tbl.Reorder())
			}
			if err := reorder.Validate(tbl.Permutation(), tbl.Rows()); err != nil {
				t.Fatalf("%v/%v: %v", ord, codec, err)
			}
			for qi, preds := range queries {
				want, err := plain.Query(preds, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tbl.Query(preds, nil)
				if err != nil {
					t.Fatalf("%v/%v q%d: %v", ord, codec, qi, err)
				}
				if !got.Equal(want) {
					t.Fatalf("%v/%v q%d: reordered table answers differently", ord, codec, qi)
				}
			}
		}
	}
}

// TestReorderShrinksRoaringStorage pins the space payoff: the sorted
// roaring store is strictly smaller than the unsorted one.
func TestReorderShrinksRoaringStorage(t *testing.T) {
	rel := buildRelation(t, 1<<14, 23)
	size := func(ord reorder.Order) int64 {
		tbl, err := Create(t.TempDir(), rel, Options{
			Store:   storage.Options{Scheme: storage.BitmapLevel, Codec: storage.CodecRoaring},
			Reorder: ord,
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, name := range tbl.Attributes() {
			a, err := tbl.Attr(name)
			if err != nil {
				t.Fatal(err)
			}
			total += a.Store().ValueBytes()
		}
		return total
	}
	unsorted, sorted := size(reorder.None), size(reorder.Lex)
	if sorted >= unsorted {
		t.Fatalf("sorted roaring store %d bytes >= unsorted %d", sorted, unsorted)
	}
}

// TestCorruptPermutationRejected covers the perm.bin integrity checks.
func TestCorruptPermutationRejected(t *testing.T) {
	rel := buildRelation(t, 300, 31)
	dir := t.TempDir()
	if _, err := Create(dir, rel, Options{Reorder: reorder.Lex}); err != nil {
		t.Fatal(err)
	}
	pp := filepath.Join(dir, permFile)
	pb, err := os.ReadFile(pp)
	if err != nil {
		t.Fatal(err)
	}
	// Flipped byte: checksum mismatch.
	mut := append([]byte(nil), pb...)
	mut[0] ^= 0xff
	if err := os.WriteFile(pp, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("opened table with corrupt perm.bin")
	}
	// Missing file.
	if err := os.Remove(pp); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("opened table with missing perm.bin")
	}
}
