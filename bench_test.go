package bitmapindex

// One benchmark per paper artifact: each Benchmark<ID> drives the same
// code path that regenerates the corresponding table or figure (see
// DESIGN.md for the mapping and cmd/bixbench for full-scale runs), at a
// reduced scale suitable for testing.B. Micro-benchmarks for the core
// operations follow.

import (
	"io"
	"math/rand"
	"testing"

	"bitmapindex/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.Default()
	cfg.Quick = true
	cfg.Rows = 20000
	cfg.TempDir = b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntro(b *testing.B)            { benchExperiment(b, "intro") }
func BenchmarkTable1(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkFig8(b *testing.B)             { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)             { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkKnee(b *testing.B)             { benchExperiment(b, "knee") }
func BenchmarkFig13(b *testing.B)            { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)            { benchExperiment(b, "fig14") }
func BenchmarkTable2(b *testing.B)           { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)           { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)           { benchExperiment(b, "table4") }
func BenchmarkFig16(b *testing.B)            { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)            { benchExperiment(b, "fig17") }
func BenchmarkAblationWAH(b *testing.B)      { benchExperiment(b, "ablation-wah") }
func BenchmarkAblationInterval(b *testing.B) { benchExperiment(b, "ablation-interval") }
func BenchmarkAblationAgg(b *testing.B)      { benchExperiment(b, "ablation-agg") }
func BenchmarkAblationCache(b *testing.B)    { benchExperiment(b, "ablation-cache") }
func BenchmarkAblationRefine(b *testing.B)   { benchExperiment(b, "ablation-refine") }

// --- core micro-benchmarks ---

func randomColumn(n int, card uint64, seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(r.Int63n(int64(card)))
	}
	return vals
}

func BenchmarkBuildKnee1M(b *testing.B) {
	vals := randomColumn(1<<20, 1000, 1)
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(vals, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalRangeQuery1M(b *testing.B) {
	vals := randomColumn(1<<20, 1000, 2)
	ix, err := New(vals, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Eval(Le, uint64(i%1000), nil)
	}
}

func BenchmarkEvalEqualityQuery1M(b *testing.B) {
	vals := randomColumn(1<<20, 1000, 3)
	ix, err := New(vals, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Eval(Eq, uint64(i%1000), nil)
	}
}

func BenchmarkDesignAdvisor(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BestBaseUnderSpace(10000, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaveOpenQuery(b *testing.B) {
	vals := randomColumn(1<<16, 50, 4)
	ix, err := New(vals, 50)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	st, err := SaveIndex(ix, dir, StoreOptions{Scheme: BitmapLevel, Compress: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Eval(Le, uint64(i%50), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSumSelected1M(b *testing.B) {
	vals := randomColumn(1<<20, 50, 5)
	ix, err := New(vals, 50)
	if err != nil {
		b.Fatal(err)
	}
	sel := ix.Eval(Le, 25, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.SumSelected(sel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMedian1M(b *testing.B) {
	vals := randomColumn(1<<20, 1000, 6)
	ix, err := New(vals, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.MedianSelected(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMutableAppendEval(b *testing.B) {
	m, err := NewMutable(1000, RangeEncoded)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if _, err := m.Append(uint64(i % 1000)); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.Compact(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Append(uint64(i % 1000)); err != nil {
			b.Fatal(err)
		}
		m.Eval(Le, uint64(i%1000))
	}
}

func BenchmarkEvalBetween1M(b *testing.B) {
	vals := randomColumn(1<<20, 1000, 7)
	ix, err := New(vals, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i % 500)
		ix.EvalBetween(lo, lo+200, nil)
	}
}

func benchBatch(b *testing.B, workers int) {
	vals := randomColumn(1<<19, 1000, 8)
	ix, err := New(vals, 1000)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]BatchQuery, 48)
	for i := range queries {
		queries[i] = BatchQuery{Op: [6]Op{Lt, Le, Gt, Ge, Eq, Ne}[i%6], V: uint64(i * 20)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.EvalBatch(queries, workers, nil, nil)
	}
}

func BenchmarkEvalBatchSerial(b *testing.B)    { benchBatch(b, 1) }
func BenchmarkEvalBatchParallel8(b *testing.B) { benchBatch(b, 8) }
