package bitmapindex

// Guards the public API surface: every exported identifier of the root
// package must be documented and must appear in the pinned list below, so
// accidental additions or removals fail loudly in review.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
	"testing"

	"bitmapindex/internal/experiments"
)

var wantAPI = []string{
	"AllocateBudget", "Allocation", "Base", "BatchQuery", "BestBaseUnderSpace",
	"BestBaseUnderSpaceExact", "BestDesignUnderSpace", "Bitmap", "BitmapLevel", "BufferAssignment",
	"BufferedTimeOptimalBase", "Builder", "CachedStore", "ComponentLevel",
	"Describe", "Encoding", "Eq", "EqualityEncoded", "EvalOptions",
	"ExpectedScans", "ExpectedScansBuffered", "ExpectedScansExact",
	"Ge", "GreedyAllocateBudget", "Gt", "Index", "IndexLevel",
	"IntervalEncoded", "KneeBase", "Le", "Lt", "MaxComponents",
	"MutableIndex", "Ne", "New", "NewCachedStore", "NewMutable",
	"NewMutableFrom", "NewStreamingBuilder", "NumBitmaps", "Op",
	"OpenIndex", "OptimalBuffer", "Option", "ParseBase", "ParseEncoding",
	"ParseOp", "ParseStoreScheme", "RangeEncoded", "SaveIndex",
	"SpaceOptimalBase", "Stats", "Store", "StoreMetrics", "StoreOptions",
	"StoreScheme", "TimeOptimalBase", "WithBase", "WithComponents",
	"WithEncoding", "WithKneeBase", "WithNulls", "WithSpaceBudget",
	"WithSpaceOptimalBase", "WithTimeOptimalBase",
	// Observability surface (PR 1).
	"BufferHitStats", "MetricsHandler", "NewQueryTrace", "NewSlowQueryLog",
	"QueryPhase", "QueryTrace", "SlowQueryLog", "Telemetry",
	"TelemetryRegistry", "TelemetrySnapshot", "WriteMetrics",
	// Segmented evaluation surface (PR 4).
	"SegConfig", "DefaultSegBits",
	// Compression backend surface (PR 9).
	"StoreCodec", "ParseStoreCodec", "CodecRaw", "CodecZlib", "CodecWAH", "CodecRoaring",
	// Workload accounting and design advisor surface (PR 10).
	"AttrDemand", "AllocateBudgetWeighted", "WorkloadAccumulator",
	"WorkloadAttrInfo", "WorkloadEvent", "WorkloadProfile", "AttrDesign",
	"AdvisorReport", "NewWorkloadAccumulator", "NewAttrDesign", "Advise",
	"WorkloadOpClass", "WorkloadEq", "WorkloadRange", "WorkloadInterval",
}

// exportedDecls parses the non-test files of the root package and returns
// exported top-level identifiers along with whether each is documented.
func exportedDecls(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil && d.Name.IsExported() {
						out[d.Name.Name] = d.Doc.Text() != ""
					}
				case *ast.GenDecl:
					groupDoc := d.Doc.Text() != ""
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								out[s.Name.Name] = groupDoc || s.Doc.Text() != "" || s.Comment.Text() != ""
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() {
									out[n.Name] = groupDoc || s.Doc.Text() != "" || s.Comment.Text() != ""
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

func TestPublicAPISurface(t *testing.T) {
	got := exportedDecls(t)
	var names []string
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	want := append([]string(nil), wantAPI...)
	sort.Strings(want)
	for _, n := range names {
		found := false
		for _, w := range want {
			if w == n {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("exported %q is not in the pinned API surface; update wantAPI deliberately", n)
		}
	}
	for _, w := range want {
		if _, ok := got[w]; !ok {
			t.Errorf("pinned API %q is gone", w)
		}
	}
}

func TestPublicAPIDocumented(t *testing.T) {
	for name, documented := range exportedDecls(t) {
		if !documented {
			t.Errorf("exported %q has no doc comment", name)
		}
	}
}

// TestEveryExperimentHasBenchmark keeps bench_test.go in lockstep with the
// experiment registry (and DESIGN.md's per-experiment index).
func TestEveryExperimentHasBenchmark(t *testing.T) {
	src, err := os.ReadFile("bench_test.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range experiments.All() {
		marker := `benchExperiment(b, "` + e.ID + `")`
		if !strings.Contains(string(src), marker) {
			t.Errorf("experiment %q has no benchmark in bench_test.go", e.ID)
		}
	}
}
