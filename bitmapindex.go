// Package bitmapindex implements the bitmap index design framework of
// Chan & Ioannidis, "Bitmap Index Design and Evaluation" (SIGMOD 1998):
// multi-component bitmap indexes over any mixed-radix attribute value
// decomposition, equality and range bitmap encodings, the RangeEval-Opt
// selection query evaluator, and the paper's physical design results —
// space-optimal, time-optimal, knee, and space-constrained index
// selection — plus bitmap buffering and three on-disk storage layouts
// with optional compression.
//
// # Quick start
//
//	vals := []uint64{3, 2, 1, 2, 8, 2, 2, 0, 7, 5} // values in [0, C)
//	ix, err := bitmapindex.New(vals, 9)             // C = 9, knee design
//	if err != nil { ... }
//	rows := ix.Eval(bitmapindex.Le, 4, nil)          // bitmap of rows with A <= 4
//	rows.Ones(func(r int) bool { fmt.Println(r); return true })
//
// New defaults to a range-encoded index with the knee base — the design
// with the best space-time tradeoff (paper Section 7). Use the options to
// pick any other point in the design space, and the *Base functions to
// reason about designs without building them.
//
// Attribute values must be consecutive integers 0..C-1; map arbitrary
// values to ranks first (the paper's lookup-table device). The engine
// package used by the examples shows a complete value dictionary.
package bitmapindex

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/buffer"
	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/design"
	"bitmapindex/internal/mutable"
	"bitmapindex/internal/storage"
	"bitmapindex/internal/telemetry"
	"bitmapindex/internal/workload"
)

// Core types. Aliases re-export the full method sets.
type (
	// Index is a multi-component bitmap index over one attribute.
	Index = core.Index
	// Base is the mixed-radix base sequence <b_n, ..., b_1> of an index,
	// stored little-endian (Base[0] is b_1).
	Base = core.Base
	// Op is a selection comparison operator.
	Op = core.Op
	// Encoding selects equality or range bitmap encoding.
	Encoding = core.Encoding
	// Stats counts bitmap scans and logical operations during evaluation.
	Stats = core.Stats
	// EvalOptions tunes one evaluation (instrumentation, buffering).
	EvalOptions = core.EvalOptions
	// Bitmap is a dense result bit vector; bit r set means row r matches.
	Bitmap = bitvec.Vector
	// BufferAssignment holds per-component buffered bitmap counts.
	BufferAssignment = buffer.Assignment
	// Store is an on-disk index opened for query evaluation.
	Store = storage.Store
	// StoreOptions selects the physical layout and compression of a
	// saved index.
	StoreOptions = storage.Options
	// StoreScheme is one of the three physical layouts (BS, CS, IS).
	StoreScheme = storage.Scheme
	// StoreCodec selects the per-file compression codec of a saved index
	// (raw, zlib, WAH, roaring).
	StoreCodec = storage.Codec
	// StoreMetrics accumulates bytes read and timing during on-disk
	// query evaluation.
	StoreMetrics = storage.Metrics
)

// Comparison operators for selection predicates (A op v).
const (
	Lt = core.Lt // A < v
	Le = core.Le // A <= v
	Gt = core.Gt // A > v
	Ge = core.Ge // A >= v
	Eq = core.Eq // A = v
	Ne = core.Ne // A != v
)

// Bitmap encodings: the paper's two (Section 2(2)) plus interval
// encoding, an extension that stores ceil(b_i/2) bitmaps per component
// and answers any digit comparison from at most two of them.
const (
	EqualityEncoded = core.EqualityEncoded
	RangeEncoded    = core.RangeEncoded
	IntervalEncoded = core.IntervalEncoded
)

// Physical storage layouts (paper Section 9).
const (
	BitmapLevel    = storage.BitmapLevel    // one file per bitmap (BS)
	ComponentLevel = storage.ComponentLevel // one row-major file per component (CS)
	IndexLevel     = storage.IndexLevel     // one row-major file for the index (IS)
)

// Storage codecs: the paper's zlib byte compression plus two bitmap-aware
// encodings — word-aligned-hybrid run-length coding and roaring hybrid
// containers (array/bitmap/run chunks).
const (
	CodecRaw     = storage.CodecRaw
	CodecZlib    = storage.CodecZlib
	CodecWAH     = storage.CodecWAH
	CodecRoaring = storage.CodecRoaring
)

// Option configures New.
type Option func(*config) error

type config struct {
	base  Base
	baseF func(card uint64) (Base, error)
	enc   Encoding
	nulls []bool
}

// WithBase selects an explicit base sequence (paper notation big-endian:
// use ParseBase("<10,10,10>"), or construct a little-endian Base directly).
func WithBase(b Base) Option {
	return func(c *config) error {
		c.base = b.Clone()
		c.baseF = nil
		return nil
	}
}

// WithEncoding selects the bitmap encoding; the default is RangeEncoded,
// which Section 5 shows has the better space-time tradeoff for the mixed
// selection query workload.
func WithEncoding(e Encoding) Option {
	return func(c *config) error {
		c.enc = e
		return nil
	}
}

// WithComponents selects the n-component space-optimal base (the most
// time-efficient one when several tie).
func WithComponents(n int) Option {
	return func(c *config) error {
		c.base = nil
		c.baseF = func(card uint64) (Base, error) { return design.SpaceOptimalBest(card, n) }
		return nil
	}
}

// WithKneeBase selects the knee of the space-time tradeoff (the default).
func WithKneeBase() Option {
	return func(c *config) error {
		c.base = nil
		c.baseF = design.Knee
		return nil
	}
}

// WithTimeOptimalBase selects the time-optimal design: the
// single-component base-C index (paper point (D)).
func WithTimeOptimalBase() Option {
	return func(c *config) error {
		c.base = nil
		c.baseF = func(card uint64) (Base, error) { return design.TimeOptimal(card, 1) }
		return nil
	}
}

// WithSpaceOptimalBase selects the space-optimal design: the base-2 index
// (paper point (A)).
func WithSpaceOptimalBase() Option {
	return func(c *config) error {
		c.base = nil
		c.baseF = func(card uint64) (Base, error) {
			return design.SpaceOptimal(card, design.MaxComponents(card))
		}
		return nil
	}
}

// WithSpaceBudget selects the most time-efficient design that stores at
// most m bitmaps, via the paper's near-optimal heuristic (paper point (B)).
func WithSpaceBudget(m int) Option {
	return func(c *config) error {
		c.base = nil
		c.baseF = func(card uint64) (Base, error) { return design.TimeOptHeuristic(card, m) }
		return nil
	}
}

// WithNulls marks null rows; they match no predicate. The slice must have
// one entry per value.
func WithNulls(nulls []bool) Option {
	return func(c *config) error {
		c.nulls = nulls
		return nil
	}
}

// New builds a bitmap index over values with attribute cardinality card.
// Every non-null value must be in [0, card). The default design is the
// range-encoded knee index; see the Options for the rest of the design
// space.
func New(values []uint64, card uint64, opts ...Option) (*Index, error) {
	cfg := config{enc: RangeEncoded, baseF: design.Knee}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	base := cfg.base
	if base == nil {
		var err error
		base, err = cfg.baseF(card)
		if err != nil {
			return nil, err
		}
	}
	var bo *core.BuildOptions
	if cfg.nulls != nil {
		bo = &core.BuildOptions{Nulls: cfg.nulls}
	}
	return core.Build(values, card, base, cfg.enc, bo)
}

// Builder accumulates a column row by row (values and nulls) and builds
// the index in one shot — the natural loading pattern for the paper's
// read-mostly DSS environment.
type Builder = core.Builder

// NewStreamingBuilder prepares a row-at-a-time index build with an
// explicit design.
func NewStreamingBuilder(card uint64, base Base, enc Encoding) (*Builder, error) {
	return core.NewBuilder(card, base, enc)
}

// BatchQuery is one predicate for Index.EvalBatch, the concurrent
// many-query entry point.
type BatchQuery = core.Query

// SegConfig tunes segmented (intra-query parallel) evaluation; the zero
// value selects the default segment width and GOMAXPROCS workers. Pass it
// to Index.SegmentedEval / SegmentedCount / SegmentedAny.
type SegConfig = core.SegConfig

// DefaultSegBits is log2 of the default segment width in bits used by
// segmented evaluation.
const DefaultSegBits = core.DefaultSegBits

// MutableIndex layers batch maintenance (tombstone deletes, an append
// segment, and Compact) over the immutable index — the read-mostly
// warehouse lifecycle.
type MutableIndex = mutable.Index

// NewMutable creates an empty mutable index with the knee design.
func NewMutable(card uint64, enc Encoding) (*MutableIndex, error) {
	return mutable.New(card, design.Knee, enc)
}

// NewMutableFrom wraps an existing index for maintenance; compactions
// keep its base sequence.
func NewMutableFrom(ix *Index) *MutableIndex { return mutable.FromIndex(ix) }

// Parse helpers.
var (
	// ParseOp parses "<", "<=", ">", ">=", "=", "==", "!=", "<>".
	ParseOp = core.ParseOp
	// ParseBase parses the paper's big-endian notation, e.g. "<10,10>".
	ParseBase = core.ParseBase
	// ParseEncoding parses "equality" or "range".
	ParseEncoding = core.ParseEncoding
	// ParseStoreScheme parses "BS", "CS" or "IS".
	ParseStoreScheme = storage.ParseScheme
	// ParseStoreCodec parses "raw", "zlib", "wah" or "roaring".
	ParseStoreCodec = storage.ParseCodec
)

// --- Design-space analysis (paper Sections 4-8) ---

// MaxComponents returns ceil(log2 C), the number of components of the
// smallest possible index (the base-2 index).
func MaxComponents(card uint64) int { return design.MaxComponents(card) }

// SpaceOptimalBase returns the n-component base with the fewest stored
// bitmaps (Theorem 6.1(1)); among ties it returns the most time-efficient.
func SpaceOptimalBase(card uint64, n int) (Base, error) {
	return design.SpaceOptimalBest(card, n)
}

// TimeOptimalBase returns the n-component base with the fewest expected
// bitmap scans per query (Theorem 6.1(3)).
func TimeOptimalBase(card uint64, n int) (Base, error) { return design.TimeOptimal(card, n) }

// KneeBase returns the design at the knee of the space-time tradeoff: the
// most time-efficient 2-component space-optimal base (Theorem 7.1).
func KneeBase(card uint64) (Base, error) { return design.Knee(card) }

// BestBaseUnderSpace returns the most time-efficient base that stores at
// most m bitmaps, using Algorithm TimeOptHeur (near-optimal, fast).
func BestBaseUnderSpace(card uint64, m int) (Base, error) {
	return design.TimeOptHeuristic(card, m)
}

// BestBaseUnderSpaceExact returns the exactly time-optimal base under the
// space constraint, using Algorithm TimeOptAlg (exhaustive within proven
// bounds; can be slow for large C and mid-range m).
func BestBaseUnderSpaceExact(card uint64, m int) (Base, error) {
	return design.TimeOptUnderSpace(card, m)
}

// BestDesignUnderSpace searches base AND encoding together: the most
// time-efficient design with at most m stored bitmaps over the combined
// frontier of all three encodings. Interval encoding's time is measured,
// so keep card moderate (a few thousand) for interactive use.
func BestDesignUnderSpace(card uint64, m int) (Base, Encoding, error) {
	return design.BestDesignUnderSpace(card, m)
}

// NumBitmaps returns the paper's space metric for a design: the number of
// stored bitmaps.
func NumBitmaps(base Base, enc Encoding) int { return cost.Space(base, enc) }

// ExpectedScans returns the paper's time metric for a range-encoded
// design: the expected number of bitmap scans per query, for queries
// uniform over all six operators and all constants in [0, C).
func ExpectedScans(base Base, card uint64) float64 { return cost.TimeRange(base, card) }

// ExpectedScansExact computes the time metric by enumerating all 6C
// queries, for either encoding.
func ExpectedScansExact(base Base, enc Encoding, card uint64) float64 {
	return cost.ExactTime(base, enc, card)
}

// Allocation is a per-attribute division of a shared disk budget (see
// AllocateBudget).
type Allocation = design.Allocation

// AllocateBudget divides a disk budget of m stored bitmaps across one
// range-encoded index per attribute (cards holds the attribute
// cardinalities) minimizing the summed expected scans per query. Exact via
// dynamic programming over the per-attribute optimal frontiers.
func AllocateBudget(cards []uint64, m int) (Allocation, error) {
	return design.AllocateBudget(cards, m)
}

// GreedyAllocateBudget is the fast near-optimal alternative to
// AllocateBudget (steepest time-saved-per-bitmap first).
func GreedyAllocateBudget(cards []uint64, m int) (Allocation, error) {
	return design.GreedyAllocate(cards, m)
}

// AttrDemand is one attribute's observed demand for the weighted
// allocator: cardinality, query weight (relative frequency) and the
// fraction of its one-sided evaluations that are range predicates
// (negative selects the paper's default 2/3 mix).
type AttrDemand = design.AttrDemand

// AllocateBudgetWeighted is AllocateBudget under a measured workload:
// attribute frontiers are priced at their observed operator mixes and the
// shared-budget DP minimizes the frequency-weighted expected scans per
// query. With uniform demands it reproduces AllocateBudget exactly. Feed
// it WorkloadProfile.Demands from a live accumulator.
func AllocateBudgetWeighted(demands []AttrDemand, m int) (Allocation, error) {
	return design.AllocateBudgetWeighted(demands, m)
}

// --- Workload accounting and the design advisor (internal/workload) ---

// Workload accounting aliases: the always-on per-attribute access
// accountant and its serializable profile. An accumulator tracks which
// attributes a live query stream touches (by operator class, constant
// position, selectivity and physical cost) over a fixed attribute set;
// its snapshots feed AllocateBudgetWeighted and the design advisor.
type (
	// WorkloadAccumulator is the bounded atomic per-attribute accountant.
	WorkloadAccumulator = workload.Accumulator
	// WorkloadAttrInfo names one attribute of an accumulator's fixed set.
	WorkloadAttrInfo = workload.AttrInfo
	// WorkloadEvent is one observed predicate evaluation.
	WorkloadEvent = workload.Event
	// WorkloadProfile is a serializable point-in-time workload snapshot.
	WorkloadProfile = workload.Profile
	// AttrDesign describes one attribute's current physical design.
	AttrDesign = workload.AttrDesign
	// AdvisorReport prices a current design against the weighted optimum
	// under an observed profile.
	AdvisorReport = workload.Report
)

// WorkloadOpClass classifies a predicate for workload accounting:
// equality, one-sided range, or two-sided interval.
type WorkloadOpClass = workload.OpClass

// Operator classes for WorkloadEvent.Class.
const (
	// WorkloadEq marks an equality or inequality predicate.
	WorkloadEq = workload.EqClass
	// WorkloadRange marks a one-sided range predicate.
	WorkloadRange = workload.RangeClass
	// WorkloadInterval marks a two-sided interval predicate.
	WorkloadInterval = workload.IntervalClass
)

// NewWorkloadAccumulator builds an accumulator over a fixed attribute
// set, registering the attribute-labeled bix_attr_* metric families in
// the default telemetry registry.
func NewWorkloadAccumulator(attrs []WorkloadAttrInfo) *WorkloadAccumulator {
	return workload.New(attrs)
}

// NewAttrDesign fills an AttrDesign — one attribute's current physical
// design — from typed fields, for feeding Advise.
func NewAttrDesign(name string, card uint64, base Base, enc Encoding, codec, reorder string) AttrDesign {
	return workload.NewAttrDesign(name, card, base, enc, codec, reorder)
}

// Advise compares a current physical design against the weighted
// recommendation under an observed workload profile, holding the disk
// budget fixed at the space the current design uses. The report carries
// the workload's drift from the uniform assumption and the expected-scan
// gain of adopting the recommendation.
func Advise(table string, designs []AttrDesign, p WorkloadProfile) (*AdvisorReport, error) {
	return workload.Advise(table, designs, p)
}

// --- Bitmap buffering (paper Section 10) ---

// OptimalBuffer returns the optimal assignment of m memory-resident
// bitmaps across the components of a range-encoded design (Theorem 10.1).
// Pass assignment.For() as EvalOptions.Buffered to reflect it in scan
// counts.
func OptimalBuffer(base Base, card uint64, m int) BufferAssignment {
	return buffer.Optimal(base, card, m)
}

// ExpectedScansBuffered returns the expected scans per query under a
// buffer assignment (paper eq. (5)).
func ExpectedScansBuffered(base Base, card uint64, a BufferAssignment) float64 {
	return buffer.Time(base, card, a)
}

// BufferedTimeOptimalBase returns the time-optimal design when m bitmaps
// can be buffered, with its optimal assignment (Theorem 10.2).
func BufferedTimeOptimalBase(card uint64, m int) (Base, BufferAssignment, error) {
	return buffer.TimeOptimalIndex(card, m)
}

// --- Storage (paper Section 9) ---

// SaveIndex writes the index to dir in the given physical layout
// (BitmapLevel / ComponentLevel / IndexLevel, optionally compressed) and
// returns the opened store.
func SaveIndex(ix *Index, dir string, opts StoreOptions) (*Store, error) {
	return storage.Save(ix, dir, opts)
}

// OpenIndex opens an index saved by SaveIndex for on-disk query
// evaluation.
func OpenIndex(dir string) (*Store, error) { return storage.Open(dir) }

// CachedStore is a Store behind an LRU pool of decompressed bitmaps; pool
// hits cost no I/O and are excluded from scan counts (a running version
// of the paper's Section 10 buffering model).
type CachedStore = storage.CachedStore

// NewCachedStore wraps an open store with an LRU pool of up to capacity
// bitmaps.
func NewCachedStore(s *Store, capacity int) (*CachedStore, error) {
	return storage.NewCached(s, capacity)
}

// --- Observability (internal/telemetry) ---

// Telemetry aliases: the process-wide metrics registry, per-query traces
// and the slow-query log. Every evaluation — in-memory, on-disk, cached or
// plan-level — feeds the default registry; traces are opt-in per query via
// EvalOptions.Trace / StoreMetrics.Trace.
type (
	// TelemetryRegistry is a named collection of atomic counters, gauges
	// and fixed-bucket histograms with Prometheus and JSON exporters.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time JSON-serializable registry view.
	TelemetrySnapshot = telemetry.Snapshot
	// QueryTrace records per-phase wall-clock durations of one evaluation.
	QueryTrace = telemetry.Trace
	// QueryPhase names one evaluation phase (fetch, bool_ops, ...).
	QueryPhase = telemetry.Phase
	// SlowQueryLog retains queries at or over a latency threshold.
	SlowQueryLog = telemetry.SlowLog
)

// Telemetry returns the process-wide metrics registry. The metric names,
// labels and histogram bucket layouts are documented in DESIGN.md.
func Telemetry() *TelemetryRegistry { return telemetry.Default() }

// NewQueryTrace starts a per-query trace; pass it via EvalOptions.Trace
// (in-memory evaluation) or StoreMetrics.Trace (on-disk evaluation).
func NewQueryTrace(name string) *QueryTrace { return telemetry.NewTrace(name) }

// MetricsHandler serves the default registry over HTTP: Prometheus text
// exposition by default, a JSON snapshot with ?format=json. Mount it at
// /metrics.
func MetricsHandler() http.Handler { return telemetry.Handler(telemetry.Default()) }

// WriteMetrics dumps the default registry in Prometheus text format.
func WriteMetrics(w io.Writer) error { return telemetry.Default().WritePrometheus(w) }

// NewSlowQueryLog creates a slow-query log: observed traces at or over
// threshold are retained (most recent keep entries) and written to w (one
// line each) when w is non-nil.
func NewSlowQueryLog(threshold time.Duration, w io.Writer, keep int) *SlowQueryLog {
	return telemetry.NewSlowLog(threshold, w, keep)
}

// BufferHitStats counts buffer-assignment hits and misses during
// evaluation; pass assignment.CountingFor(&stats) as EvalOptions.Buffered.
type BufferHitStats = buffer.HitStats

// Describe summarizes a design in one line, e.g. for advisor output.
func Describe(base Base, enc Encoding, card uint64) string {
	var t float64
	switch enc {
	case RangeEncoded:
		t = cost.TimeRange(base, card)
	case EqualityEncoded:
		t = cost.ExactTimeEquality(base, card)
	default:
		t = cost.ExactTime(base, enc, card)
	}
	return fmt.Sprintf("base %v, %s-encoded: %d bitmaps, %.3f expected scans/query",
		base, enc, cost.Space(base, enc), t)
}
